module Make (P : Protocol.PROTOCOL) = struct
  module Mon = Obs.Monitor.Make (P)

  type action = (P.update, P.query) Protocol.invocation

  type config = {
    seed : int;
    n : int;
    delay : Network.delay_model;
    fifo : bool;
    partitions : Network.partition list;
    crashes : (float * int) list;
    churn : Network.churn_event list;
    think : Network.delay_model;
    final_read : P.query option;
    deadline : float;
    trace : bool;
    batch_window : float option;
    envelope : int;
    obs : Obs.t option;
    probe_interval : float option;
    fingerprint : (P.t -> string) option;
    monitor : Mon.t option;
    sampler : Obs.Series.sampler option;
  }

  let default_config ~n ~seed =
    {
      seed;
      n;
      delay = Network.Uniform { lo = 1.0; hi = 10.0 };
      fifo = false;
      partitions = [];
      crashes = [];
      churn = [];
      think = Network.Exponential { mean = 5.0 };
      final_read = None;
      deadline = 1e7;
      trace = false;
      batch_window = None;
      envelope = 0;
      obs = None;
      probe_interval = None;
      fingerprint = None;
      monitor = None;
      sampler = None;
    }

  (* Replica state fingerprint for the divergence probe when the caller
     supplies none: the certificate if the protocol keeps one, the log
     length otherwise (coarse, but monotone under convergence). *)
  let default_fingerprint r =
    match P.certificate r with
    | Some cert ->
      String.concat ";"
        (List.map
           (fun (p, u) -> Format.asprintf "%d:%a" p P.pp_update u)
           cert)
    | None -> Printf.sprintf "log:%d" (P.log_length r)

  (* Per-replica registry handles for the operation-level series the
     runner itself records. *)
  type runner_obs = {
    upd : Obs.Registry.counter array;
    qry : Obs.Registry.counter array;
    comp : Obs.Registry.counter array;
    rep : Obs.Registry.counter array;
    lat : Obs.Registry.hist array;
  }

  type result = {
    history : (P.update, P.query, P.output) History.t;
    metrics : Metrics.t;
    op_latencies : float list;
    final_outputs : (int * P.output) list;
    converged : bool;
    certificates : (int * (int * P.update) list) list;
    certificates_agree : bool;
    log_lengths : (int * int) list;
    metadata_bytes : (int * int) list;
    sim_duration : float;
    trace : Trace.t option;
    intervals : (float * float) array;
  }

  let run config ~workload =
    let n = config.n in
    if Array.length workload <> n then
      invalid_arg "Runner.run: workload width must match config.n";
    let engine = Engine.create () in
    let metrics = Metrics.create () in
    let trace = if config.trace then Some (Trace.create ()) else None in
    let root_rng = Prng.create config.seed in
    let net_rng = Prng.split root_rng in
    let think_rngs = Array.init n (fun _ -> Prng.split root_rng) in
    let replicas = Array.make n None in
    let record_delivery =
      Option.map
        (fun tr ~sent ~received ~src ~dst msg ->
          Trace.record_delivery tr ~sent ~received ~src ~dst (P.describe_message msg))
        trace
    in
    (* Filled in below, once the probe has everything it closes over;
       the network's deliver callback fires only when the engine runs,
       well after assignment. *)
    let probe_after_delivery = ref (fun () -> ()) in
    let network =
      Network.create ~engine ~rng:net_rng ~metrics ~n ~fifo:config.fifo
        ~partitions:config.partitions ~envelope:config.envelope ?record_delivery
        ?obs:config.obs ~delay:config.delay ~wire_size:P.message_wire_size
        ~deliver:(fun ~dst ~src msg ->
          (match replicas.(dst) with
          | Some r -> P.receive r ~src msg
          | None -> ());
          !probe_after_delivery ())
        ()
    in
    let crashed = Array.make n false in
    (* Churn bookkeeping. A pid whose first churn event is a [Join]
       starts the run absent: no replica, script parked until it joins.
       [offline] mirrors the network's detach state for the driver and
       probe; [ever_offline] marks replicas that may have missed frames
       and therefore need the quiescence catch-up pass. *)
    let offline = Array.make n false in
    let ever_offline = Array.make n false in
    let parked : action list option array = Array.make n None in
    let churn_sorted =
      List.stable_sort
        (fun (a : Network.churn_event) b -> Float.compare a.time b.time)
        config.churn
    in
    let starts_absent =
      Array.init n (fun pid ->
          match
            List.find_opt
              (fun (ce : Network.churn_event) -> ce.Network.pid = pid)
              churn_sorted
          with
          | Some { action = Network.Join; _ } -> true
          | _ -> false)
    in
    Array.iteri
      (fun pid absent ->
        if absent then begin
          offline.(pid) <- true;
          ever_offline.(pid) <- true;
          Network.detach network pid
        end)
      starts_absent;
    (* Journal plumbing: event indices are journal positions when a
       journal is attached (so monitor violations cite replayable
       indices) and a plain operation counter otherwise. *)
    let journal = Option.bind config.obs (fun o -> o.Obs.journal) in
    let observing = journal <> None || config.monitor <> None in
    let mon_seq = ref 0 in
    let next_index () =
      match journal with
      | Some j -> Obs.Journal.length j
      | None ->
        let i = !mon_seq in
        incr mon_seq;
        i
    in
    let jrecord f =
      match journal with Some j -> Obs.Journal.record j (f ()) | None -> ()
    in
    List.iter
      (fun (p : Network.partition) ->
        jrecord (fun () ->
            Obs.Journal.Partition
              {
                from_time = p.Network.from_time;
                to_time = p.Network.to_time;
                group = p.Network.group;
              }))
      config.partitions;
    let pid_labels pid = [ ("pid", string_of_int pid) ] in
    let runner_obs =
      Option.map
        (fun o ->
          let per name =
            Array.init n (fun pid ->
                Obs.Registry.counter o.Obs.registry ~labels:(pid_labels pid)
                  name)
          in
          {
            upd = per "updates_invoked";
            qry = per "queries_invoked";
            comp = per "ops_completed";
            rep = per "replay_steps";
            lat =
              Array.init n (fun pid ->
                  Obs.Registry.hist o.Obs.registry ~labels:(pid_labels pid)
                    "op_latency");
          })
        config.obs
    in
    let robs f = Option.iter f runner_obs in
    (* Convergence-lag probe: piggybacks on existing engine activations
       (deliveries and invocations) rather than scheduling its own
       events, so enabling it cannot perturb the simulation schedule;
       [interval] only rate-limits the sampling in simulated time. *)
    let probe =
      match (config.obs, config.probe_interval) with
      | Some o, Some interval ->
        let fingerprint =
          Option.value config.fingerprint ~default:default_fingerprint
        in
        let last = ref Float.neg_infinity in
        Some
          (fun ~force () ->
            let now = Engine.now engine in
            if force || now -. !last >= interval then begin
              last := now;
              let fps = ref [] in
              for pid = n - 1 downto 0 do
                if not crashed.(pid) && not offline.(pid) then
                  match replicas.(pid) with
                  | Some r -> fps := fingerprint r :: !fps
                  | None -> ()
              done;
              let distinct =
                List.length (List.sort_uniq String.compare !fps)
              in
              Obs.record_divergence o ~time:now ~distinct;
              jrecord (fun () -> Obs.Journal.Probe { time = now; distinct });
              Option.iter
                (fun m -> Mon.on_probe m ~time:now ~distinct)
                config.monitor
            end)
      | _ -> None
    in
    (* Time-series sampler: same piggyback discipline as the probe —
       it rides existing activations and schedules nothing, so enabling
       it cannot perturb the schedule. The runner contributes the
       resource series the sampler cannot see from the registry alone:
       per-replica log length, checkpoint counts (via the profile), and
       the engine's pending-event queue depth as the mailbox proxy. *)
    (match config.sampler with
    | None -> ()
    | Some s ->
      Obs.Series.add_probe s (fun () ->
          let readings = ref [] in
          readings :=
            ("queue_depth", [], float_of_int (Engine.pending engine))
            :: !readings;
          for pid = n - 1 downto 0 do
            (match replicas.(pid) with
            | Some r when (not crashed.(pid)) && not offline.(pid) ->
              readings :=
                ("log_len", pid_labels pid, float_of_int (P.log_length r))
                :: !readings
            | _ -> ());
            Option.iter
              (fun o ->
                let rep = Obs.replica o pid in
                let taken = rep.Obs.profile.Obs.Profile.checkpoints_taken in
                if taken > 0 then
                  readings :=
                    ("checkpoints", pid_labels pid, float_of_int taken)
                    :: !readings)
              config.obs
          done;
          !readings));
    let maybe_sample () =
      match config.sampler with
      | None -> ()
      | Some s -> Obs.Series.maybe_tick s ~now:(Engine.now engine)
    in
    let maybe_probe () =
      (match probe with Some p -> p ~force:false () | None -> ());
      maybe_sample ()
    in
    probe_after_delivery := maybe_probe;
    (* Per-process recorded steps, reversed, with (start, finish ref)
       intervals recorded in lockstep. *)
    let steps : (P.update, P.query, P.output) History.step list ref array =
      Array.init n (fun _ -> ref [])
    in
    let op_times : (float * float ref) list ref array = Array.init n (fun _ -> ref []) in
    let latencies = ref [] in
    (* Per-process broadcast buffers for window batching: the first
       broadcast of a window schedules a flush [batch_window] later;
       everything buffered until then leaves as one frame per
       destination. Flushes are engine events, so they drain inside the
       main [Engine.run] and respect crashes (a crashed source's buffer
       is dropped by the network like any of its sends). *)
    (* Buffered messages carry the span that was ambient when the
       protocol handed them over — by flush time the batching window has
       long outlived it. *)
    let batch_bufs = Array.init n (fun _ -> Queue.create ()) in
    let flush_batch pid =
      let q = batch_bufs.(pid) in
      if not (Queue.is_empty q) then begin
        let msgs = List.of_seq (Queue.to_seq q) in
        Queue.clear q;
        Network.broadcast_stamped_batch network ~src:pid msgs
      end
    in
    let make_replica pid =
      let ctx =
        {
          Protocol.pid;
          n;
          now = (fun () -> Engine.now engine);
          send = (fun ~dst msg -> Network.send network ~src:pid ~dst msg);
          broadcast =
            (match config.batch_window with
            | None -> fun msg -> Network.broadcast network ~src:pid msg
            | Some window ->
              fun msg ->
                if Queue.is_empty batch_bufs.(pid) then
                  Engine.schedule engine ~delay:window (fun () -> flush_batch pid);
                Queue.add (msg, Network.ambient network) batch_bufs.(pid));
          broadcast_batch =
            (fun msgs -> Network.broadcast_batch network ~src:pid msgs);
          set_timer = (fun ~delay thunk -> Engine.schedule engine ~delay thunk);
          count_replay =
            (fun k ->
              metrics.Metrics.replay_steps <- metrics.Metrics.replay_steps + k;
              robs (fun ro -> Obs.Registry.inc ~by:k ro.rep.(pid)));
          obs = Option.map (fun o -> Obs.replica o pid) config.obs;
        }
      in
      P.create ctx
    in
    for pid = 0 to n - 1 do
      if not starts_absent.(pid) then replicas.(pid) <- Some (make_replica pid)
    done;
    let replica pid =
      match replicas.(pid) with
      | Some r -> r
      | None -> invalid_arg "Runner: replica not initialised"
    in
    (* Sequential script driver for one process. An offline process
       parks its remaining script instead of issuing: its client pauses
       with it and resumes (with a fresh think gap) when it rejoins. *)
    let rec issue pid script =
      if crashed.(pid) then ()
      else if offline.(pid) then parked.(pid) <- Some script
      else begin
        match script with
        | [] -> ()
        | action :: rest ->
          let started = Engine.now engine in
          let continue () =
            if not crashed.(pid) then begin
              metrics.Metrics.ops_completed <- metrics.Metrics.ops_completed + 1;
              let elapsed = Engine.now engine -. started in
              latencies := elapsed :: !latencies;
              robs (fun ro ->
                  Obs.Registry.inc ro.comp.(pid);
                  Obs.Registry.observe ro.lat.(pid) elapsed);
              Option.iter
                (fun s ->
                  Obs.Series.observe_latency s ~key:pid elapsed;
                  Obs.Series.maybe_tick s ~now:(Engine.now engine))
                config.sampler;
              let gap = Network.draw_delay think_rngs.(pid) config.think in
              Engine.schedule engine ~delay:gap (fun () -> issue pid rest)
            end
          in
          (match action with
          | Protocol.Invoke_update u ->
            metrics.Metrics.updates_invoked <- metrics.Metrics.updates_invoked + 1;
            robs (fun ro -> Obs.Registry.inc ro.upd.(pid));
            steps.(pid) := History.U u :: !(steps.(pid));
            let finish = ref Float.infinity in
            op_times.(pid) := (started, finish) :: !(op_times.(pid));
            Option.iter
              (fun tr ->
                Trace.record_op tr ~time:started ~pid
                  (Format.asprintf "%a" P.pp_update u))
              trace;
            let do_update () =
              P.update (replica pid) u ~on_done:(fun () ->
                  finish := Engine.now engine;
                  continue ())
            in
            (* Journal the invocation (and feed the monitor) before the
               protocol runs, so the frames its broadcast produces land
               after their cause in the journal. *)
            let observe_update span =
              if observing then begin
                let index = next_index () in
                jrecord (fun () ->
                    Obs.Journal.Update
                      {
                        pid;
                        time = started;
                        span;
                        label = Format.asprintf "%a" P.pp_update u;
                      });
                Option.iter
                  (fun m -> Mon.on_update m ~pid ~index ~span u)
                  config.monitor
              end
            in
            (match config.obs with
            | None ->
              observe_update None;
              do_update ()
            | Some o ->
              (* Open the update's span and leave it ambient while the
                 protocol processes the invocation, so broadcasts it
                 emits are stamped; the origin applies its own update
                 synchronously (Section VII.B), recorded on return. *)
              let span =
                Obs.Span.fresh o.Obs.spans ~pid ~time:started
                  ~label:(Format.asprintf "%a" P.pp_update u)
              in
              observe_update (Some span);
              Obs.Span.set_active o.Obs.spans (Some span);
              do_update ();
              Obs.Span.record_apply o.Obs.spans ~span:(Some span) ~pid
                ~time:(Engine.now engine);
              Obs.Span.set_active o.Obs.spans None;
              maybe_probe ())
          | Protocol.Invoke_query q ->
            metrics.Metrics.queries_invoked <- metrics.Metrics.queries_invoked + 1;
            robs (fun ro -> Obs.Registry.inc ro.qry.(pid));
            (* Queries get a local span (they never propagate, so it is
               excluded from visibility metrics) purely so the journal
               and monitor can cite a causal id for the read. *)
            let qspan =
              Option.map
                (fun o ->
                  Obs.Span.fresh ~local:true o.Obs.spans ~pid ~time:started
                    ~label:(Format.asprintf "%a" P.pp_query q))
                config.obs
            in
            let do_query () =
              P.query (replica pid) q ~on_result:(fun output ->
                  if not crashed.(pid) then begin
                    steps.(pid) := History.Q (q, output) :: !(steps.(pid));
                    op_times.(pid) :=
                      (started, ref (Engine.now engine)) :: !(op_times.(pid));
                    Option.iter
                      (fun tr ->
                        Trace.record_op tr ~time:(Engine.now engine) ~pid
                          (Format.asprintf "%a/%a" P.pp_query q P.pp_output output))
                      trace;
                    if observing then begin
                      let index = next_index () in
                      jrecord (fun () ->
                          Obs.Journal.Query
                            {
                              pid;
                              invoked = started;
                              completed = Engine.now engine;
                              span = qspan;
                              label = Format.asprintf "%a" P.pp_query q;
                              output = Format.asprintf "%a" P.pp_output output;
                              omega = false;
                            });
                      Option.iter
                        (fun m ->
                          Mon.on_query m ~pid ~index ~span:qspan ~omega:false q
                            output)
                        config.monitor
                    end;
                    continue ()
                  end)
            in
            (match config.obs with
            | None -> do_query ()
            | Some o ->
              Obs.Span.set_active o.Obs.spans qspan;
              do_query ();
              Obs.Span.set_active o.Obs.spans None))
      end
    in
    Array.iteri
      (fun pid script ->
        let gap = Network.draw_delay think_rngs.(pid) config.think in
        Engine.schedule engine ~delay:gap (fun () -> issue pid script))
      workload;
    List.iter
      (fun (time, pid) ->
        Engine.schedule_at engine ~time (fun () ->
            crashed.(pid) <- true;
            Option.iter (fun tr -> Trace.record_crash tr ~time ~pid) trace;
            jrecord (fun () -> Obs.Journal.Crash { pid; time });
            Network.crash network pid))
      config.crashes;
    (* Catch-up donor for an attaching replica: the first present peer
       not separated from it by a partition at [at]. *)
    let find_donor pid ~at =
      let rec seek d =
        if d >= n then None
        else if
          d <> pid && (not crashed.(d)) && (not offline.(d))
          && replicas.(d) <> None
          && not (Network.separated_at network ~src:d ~dst:pid ~at)
        then Some d
        else seek (d + 1)
      in
      seek 0
    in
    let apply_churn (ce : Network.churn_event) =
      let pid = ce.Network.pid in
      let time = ce.Network.time in
      if not crashed.(pid) then
        match ce.Network.action with
        | Network.Leave ->
          if not offline.(pid) then begin
            offline.(pid) <- true;
            ever_offline.(pid) <- true;
            Network.detach network pid;
            jrecord (fun () -> Obs.Journal.Leave { pid; time })
          end
        | Network.Join | Network.Rejoin ->
          if offline.(pid) then begin
            let rejoin = replicas.(pid) <> None in
            if not rejoin then replicas.(pid) <- Some (make_replica pid);
            offline.(pid) <- false;
            Network.attach network pid;
            let r =
              match replicas.(pid) with Some r -> r | None -> assert false
            in
            (* Repair the gap from a reachable peer's snapshot; when no
               peer is reachable (all crashed, offline or partitioned
               away) the joiner starts from whatever it has and the
               quiescence catch-up pass finishes the job. *)
            let bytes =
              match find_donor pid ~at:time with
              | None -> 0
              | Some d -> (
                let donor =
                  match replicas.(d) with Some r -> r | None -> assert false
                in
                match P.snapshot donor with
                | None -> 0
                | Some s ->
                  if P.absorb r s then begin
                    metrics.Metrics.snapshots_absorbed <-
                      metrics.Metrics.snapshots_absorbed + 1;
                    metrics.Metrics.catchup_bytes <-
                      metrics.Metrics.catchup_bytes + String.length s;
                    String.length s
                  end
                  else 0)
            in
            jrecord (fun () -> Obs.Journal.Join { pid; time; rejoin; bytes });
            match parked.(pid) with
            | None -> ()
            | Some script ->
              parked.(pid) <- None;
              let gap = Network.draw_delay think_rngs.(pid) config.think in
              Engine.schedule engine ~delay:gap (fun () -> issue pid script)
          end
    in
    List.iter
      (fun (ce : Network.churn_event) ->
        Engine.schedule_at engine ~time:ce.Network.time (fun () ->
            apply_churn ce))
      churn_sorted;
    Engine.run ~until:config.deadline engine;
    (* Churn-aware quiescence: replicas that spent time detached (and
       peers that missed their frames to them) may still lag — dropped
       frames are never retransmitted by Algorithm 1. Exchange snapshots
       among present replicas to a fixpoint; protocols without a
       snapshot codec fall through unchanged and must converge through
       the message flow alone. Inert when the run had no churn. *)
    if Array.exists Fun.id ever_offline then begin
      let present pid =
        (not crashed.(pid)) && (not offline.(pid)) && replicas.(pid) <> None
      in
      let changed = ref true in
      let rounds = ref 0 in
      while !changed && !rounds <= n do
        changed := false;
        incr rounds;
        for pid = 0 to n - 1 do
          if present pid then
            for d = 0 to n - 1 do
              if d <> pid && present d then
                match replicas.(pid), replicas.(d) with
                | Some r, Some donor -> (
                  match P.snapshot donor with
                  | None -> ()
                  | Some s ->
                    let before = P.log_length r in
                    if P.absorb r s && P.log_length r <> before then
                      changed := true)
                | _ -> ()
            done
        done
      done
    end;
    (* One forced probe at quiescence: this is the sample that should
       show the divergence gauge back at 1 once partitions healed. *)
    (match probe with Some p -> p ~force:true () | None -> ());
    (* And one forced sampler tick, so every series carries a point at
       the run's true end even when the cadence last fired earlier. *)
    Option.iter
      (fun s -> Obs.Series.tick s ~now:(Engine.now engine))
      config.sampler;
    (* Quiescence: issue the ω final reads on live processes — crashed
       replicas are gone for good and replicas still detached by churn
       at the end of the run are outside the system (the paper's ω reads
       belong to correct, participating processes). *)
    let present pid =
      (not crashed.(pid)) && (not offline.(pid)) && replicas.(pid) <> None
    in
    let final_outputs = ref [] in
    (match config.final_read with
    | None -> ()
    | Some q ->
      for pid = 0 to n - 1 do
        if present pid then begin
          metrics.Metrics.queries_invoked <- metrics.Metrics.queries_invoked + 1;
          robs (fun ro -> Obs.Registry.inc ro.qry.(pid));
          let started = Engine.now engine in
          let qspan =
            Option.map
              (fun o ->
                Obs.Span.fresh ~local:true o.Obs.spans ~pid ~time:started
                  ~label:(Format.asprintf "%aω" P.pp_query q))
              config.obs
          in
          let do_query () =
            P.query (replica pid) q ~on_result:(fun output ->
                steps.(pid) := History.Qw (q, output) :: !(steps.(pid));
                op_times.(pid) :=
                  (Engine.now engine, ref (Engine.now engine))
                  :: !(op_times.(pid));
                Option.iter
                  (fun tr ->
                    Trace.record_op tr ~time:(Engine.now engine) ~pid
                      (Format.asprintf "%a/%aω" P.pp_query q P.pp_output output))
                  trace;
                if observing then begin
                  let index = next_index () in
                  jrecord (fun () ->
                      Obs.Journal.Query
                        {
                          pid;
                          invoked = started;
                          completed = Engine.now engine;
                          span = qspan;
                          label = Format.asprintf "%a" P.pp_query q;
                          output = Format.asprintf "%a" P.pp_output output;
                          omega = true;
                        });
                  Option.iter
                    (fun m ->
                      Mon.on_query m ~pid ~index ~span:qspan ~omega:true q
                        output)
                    config.monitor
                end;
                final_outputs := (pid, output) :: !final_outputs)
          in
          match config.obs with
          | None -> do_query ()
          | Some o ->
            Obs.Span.set_active o.Obs.spans qspan;
            do_query ();
            Obs.Span.set_active o.Obs.spans None
        end
      done;
      Engine.run ~until:config.deadline engine);
    let invoked =
      metrics.Metrics.updates_invoked + metrics.Metrics.queries_invoked
    in
    metrics.Metrics.ops_incomplete <-
      invoked - metrics.Metrics.ops_completed - List.length !final_outputs;
    let final_outputs = List.rev !final_outputs in
    let converged =
      match final_outputs with
      | [] -> true
      | (_, o0) :: rest -> List.for_all (fun (_, o) -> P.equal_output o0 o) rest
    in
    let live = List.filter present (List.init n Fun.id) in
    let certificates =
      List.filter_map
        (fun pid -> Option.map (fun c -> (pid, c)) (P.certificate (replica pid)))
        live
    in
    let certificates_agree =
      match certificates with
      | [] -> true
      | (_, c0) :: rest ->
        List.for_all
          (fun (_, c) ->
            List.length c = List.length c0
            && List.for_all2
                 (fun (p, u) (p', u') -> p = p' && P.equal_update u u')
                 c c0)
          rest
    in
    let intervals =
      Array.to_list op_times
      |> List.concat_map (fun r -> List.rev_map (fun (s, f) -> (s, !f)) !r)
      |> Array.of_list
    in
    Option.iter
      (fun o ->
        Obs.finalize o ~live;
        Metrics.to_registry metrics o.Obs.registry)
      config.obs;
    let history =
      History.make (List.map (fun r -> List.rev !r) (Array.to_list steps))
    in
    Option.iter
      (fun j ->
        Obs.Journal.seal j
          ~fingerprint:
            (History.fingerprint P.pp_update P.pp_query P.pp_output history))
      journal;
    {
      history;
      metrics;
      op_latencies = List.rev !latencies;
      final_outputs;
      converged;
      certificates;
      certificates_agree;
      log_lengths = List.map (fun pid -> (pid, P.log_length (replica pid))) live;
      metadata_bytes = List.map (fun pid -> (pid, P.metadata_bytes (replica pid))) live;
      sim_duration = Engine.now engine;
      trace;
      intervals;
    }
end
