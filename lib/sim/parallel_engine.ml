(* Domain-per-replica execution of a replica protocol.

   The discrete-event [Runner] interleaves every replica on one core
   under a deterministic virtual clock; this engine runs the same
   protocol cores truly concurrently, one OCaml 5 domain per replica,
   connected by bounded MPSC mailboxes ([Mpsc]). Nothing about the
   protocol changes: each domain owns its replica and is the only
   mutator of it, messages travel as immutable frames, and the byte
   accounting per frame (envelope + per-message wire size, batches
   counted when a frame carries more than one message) matches the
   sequential [Network] exactly.

   Why this is sound to check: under strong update consistency the
   state a replica reaches depends only on the timestamp total order of
   the updates it has received, never on their arrival order (Prop. 4).
   So however the OS schedules the domains, once every mailbox is
   drained all replicas must hold the same timestamp-sorted log, and
   that log replayed sequentially must equal a sequential fold of the
   same update multiset. The engine enforces the first property
   (convergence of outputs and certificates) itself; the analysis layer
   pins the second against the sequential cores.

   Domain-safety inventory (the audit the multicore port forced):
   - [Prng]: each domain's client draws from its own [Prng.fork]ed
     stream; generators are never shared across domains.
   - [Oplog]/protocol state: strictly domain-private; published to the
     coordinating domain only through [Domain.join].
   - [Generic.Make.checkpoint_interval]: a per-functor ref read at
     [create] time — replicas are created inside their domains but the
     ref is only written before [run] starts, on the main domain, and
     the spawn itself is a synchronisation point.
   - [Obs]: [Obs.replica] mutates a shared list, so each domain builds
     a detached handle with [Obs.make_replica] and writes its metrics
     into a private [Registry.shard]; the coordinating domain adopts
     the handles and merges the shards after the joins. No shared
     telemetry state is touched while the domains run.
   - [Recorder]: handles are per-domain by construction; the frame
     carries the sender's Lamport stamp so the receiver can order the
     delivery after the send. *)

type domain_report = {
  pid : int;
  ops : int;  (* invocations completed (updates + queries) *)
  updates : int;
  queries : int;
  frames_sent : int;
  messages_sent : int;
  bytes_sent : int;
  batches_sent : int;
  messages_received : int;
  mailbox_stalls : int;  (* pushes that found a peer's mailbox full *)
  mailbox_max_depth : int;  (* deepest this replica's own mailbox got *)
  replay_steps : int;
  latencies : float array;  (* seconds per invocation, in issue order *)
}

module Make (P : Protocol.PROTOCOL) = struct
  type frame = { src : int; msgs : P.message list; lam : int }
  (* [lam] is the sender's Lamport stamp for the frame (0 when no
     recorder is attached); immutable, so sharing it across the
     mailbox is safe. *)

  type config = {
    domains : int;
    mailbox_capacity : int;
    envelope : int;  (* per-frame overhead bytes, as [Runner.config] *)
    batch_every : int;
        (* per-destination coalescing threshold: a destination's buffer
           is flushed as one frame once it holds k messages; 1 =
           unbatched, every message its own frame *)
    flush_window : int;
        (* force a flush of every buffer after this many invocations,
           bounding how long a coalesced message may wait for its
           buffer to fill; 0 = no window (threshold + boundary flushes
           only) *)
    final_read : P.query option;  (* the ω read every replica answers *)
    obs : Obs.t option;
    recorder : Obs.Recorder.t option;
  }

  let default_config ~domains =
    {
      domains;
      mailbox_capacity = 1024;
      envelope = 0;
      batch_every = 1;
      flush_window = 0;
      final_read = None;
      obs = None;
      recorder = None;
    }

  type result = {
    reports : domain_report array;
    replicas : P.t array;
    outputs : (int * P.output) list;  (* ω answers, when [final_read] *)
    query_outputs : P.output list array;
        (* per-domain non-ω query answers in issue order; captured only
           when a recorder is attached (empty lists otherwise) *)
    outputs_agree : bool;
    certificates_agree : bool;
    log_lengths : int array;
    wall_seconds : float;  (* max domain end - min domain start *)
    ops_total : int;
    updates_total : int;
    throughput : float;  (* aggregate invocations per wall second *)
  }

  (* Mutable per-domain accumulator; strictly domain-private until the
     join, then folded into the immutable report. *)
  type local = {
    mutable l_updates : int;
    mutable l_queries : int;
    mutable l_frames : int;
    mutable l_messages : int;
    mutable l_bytes : int;
    mutable l_batches : int;
    mutable l_received : int;
    mutable l_stalls : int;
    mutable l_depth : int;
    mutable l_replay : int;
  }

  let run config ~(workload : (P.update, P.query) Protocol.invocation list array)
      =
    let n = config.domains in
    if n <= 0 then invalid_arg "Parallel_engine.run: domains must be positive";
    if Array.length workload <> n then
      invalid_arg "Parallel_engine.run: one workload script per domain";
    if config.batch_every <= 0 then
      invalid_arg "Parallel_engine.run: batch_every must be positive";
    if config.flush_window < 0 then
      invalid_arg "Parallel_engine.run: flush_window must be non-negative";
    let mailboxes = Array.init n (fun _ -> Mpsc.create config.mailbox_capacity) in
    (* In-flight frame count: bumped before a frame is pushed, dropped
       after its messages have been processed. Zero (together with all
       clients done) therefore means: no frame is queued anywhere and
       none is being processed whose handler could still send. *)
    let outstanding = Atomic.make 0 in
    (* Domains currently holding coalesced-but-undelivered messages.
       A domain increments this before its first buffered message
       becomes visible and decrements only after the flushed frames
       have been counted into [outstanding], so the quiescence
       predicate [clients done ∧ outstanding = 0 ∧ buffered = 0] never
       observes a message in neither census. *)
    let buffered = Atomic.make 0 in
    let clients_running = Atomic.make n in
    let quiesced = Atomic.make false in
    let started = Atomic.make 0 in
    (* Telemetry shards: one private registry (and one detached replica
       handle, built in-domain) per domain, so no shared Obs state is
       touched until the merge after the joins. *)
    let shards =
      match config.obs with
      | None -> [||]
      | Some o -> Array.init n (fun _ -> Obs.Registry.shard o.Obs.registry)
    in
    let obs_handles = Array.make n None in
    (match config.recorder with
    | None -> ()
    | Some r ->
      (* Fail fast on an under-sized recorder, before any spawn. *)
      ignore (Obs.Recorder.handle r (n - 1)));
    let reports = Array.make n None in
    let replicas = Array.make n None in
    let outputs = Array.make n None in
    let q_outputs = Array.make n [] in
    let spans = Array.make n (0.0, 0.0) in
    let t0 = Unix.gettimeofday () in
    (match config.recorder with
    | None -> ()
    | Some r ->
      (* Run-relative wall clock; a clock injected at [create] (a
         test's deterministic counter) wins. The spawn below is the
         synchronisation point that publishes it. *)
      Obs.Recorder.install_clock r (fun () -> Unix.gettimeofday () -. t0));
    let body pid () =
      let l =
        {
          l_updates = 0;
          l_queries = 0;
          l_frames = 0;
          l_messages = 0;
          l_bytes = 0;
          l_batches = 0;
          l_received = 0;
          l_stalls = 0;
          l_depth = 0;
          l_replay = 0;
        }
      in
      let mybox = mailboxes.(pid) in
      let rh =
        match config.recorder with
        | None -> None
        | Some r -> Some (Obs.Recorder.handle r pid)
      in
      let replica = ref None in
      (* Spin-then-park pacing for the two busy-wait loops (stalled
         pushes, quiescence idling): a cheap [cpu_relax] burst first,
         then exponentially growing sleeps, reset whenever the loop
         makes progress — so transient contention costs nanoseconds
         while sustained backpressure degrades to a polite poll
         instead of a fixed-cadence sleep storm. *)
      let stall_bk = Mpsc.Backoff.create ~park:Unix.sleepf ~park_max:2e-4 () in
      let idle_bk = Mpsc.Backoff.create ~park:Unix.sleepf ~park_max:2e-4 () in
      let draining = ref false in
      let drain () =
        if not !draining then begin
          draining := true;
          let d = Mpsc.length mybox in
          if d > l.l_depth then l.l_depth <- d;
          let handle { src; msgs; lam } =
            (match rh with
            | None -> ()
            | Some h ->
              Obs.Recorder.deliver h ~src ~count:(List.length msgs)
                ~frame_lamport:lam);
            (match !replica with
            | Some r -> P.receive_batch r ~src msgs
            | None -> assert false);
            l.l_received <- l.l_received + List.length msgs;
            Atomic.decr outstanding
          in
          (* Batch dequeue: every [pop_run] takes the whole ready run in
             one synchronisation; loop until the mailbox is momentarily
             dry so frames that arrived while we processed are taken
             too. *)
          let rec go () = if Mpsc.pop_run mybox handle > 0 then go () in
          go ();
          draining := false
        end
      in
      let deliver ~dst msgs =
        let count = List.length msgs in
        let bytes =
          config.envelope
          + List.fold_left (fun acc m -> acc + P.message_wire_size m) 0 msgs
        in
        l.l_frames <- l.l_frames + 1;
        l.l_messages <- l.l_messages + count;
        l.l_bytes <- l.l_bytes + bytes;
        if count > 1 then l.l_batches <- l.l_batches + 1;
        let lam =
          match rh with
          | None -> 0
          | Some h -> Obs.Recorder.send h ~dst ~count ~bytes
        in
        let frame = { src = pid; msgs; lam } in
        Atomic.incr outstanding;
        if not (Mpsc.try_push mailboxes.(dst) frame) then begin
          (* One stall event per stalled frame, however many retries the
             slow path spins through (the retry count stays a metric). *)
          (match rh with None -> () | Some h -> Obs.Recorder.stall h ~dst);
          Mpsc.Backoff.reset stall_bk;
          let pushed = ref false in
          while not !pushed do
            l.l_stalls <- l.l_stalls + 1;
            (* Drain our own mailbox while the peer's is full: every
               domain always makes progress on its own queue, so no
               cycle of full mailboxes can deadlock. *)
            drain ();
            Mpsc.Backoff.once stall_bk;
            pushed := Mpsc.try_push mailboxes.(dst) frame
          done
        end
      in
      (* Sender-side coalescing: one buffer per destination (newest
         first), flushed as a single frame when it reaches
         [batch_every] messages, when the flush window expires, and at
         the script/quiescence boundaries. [buffered_total] is the
         domain-private census across all buffers backing the shared
         [buffered] advertisement. *)
      let buffers = Array.make n [] in
      let buffer_counts = Array.make n 0 in
      let buffered_total = ref 0 in
      let enqueue dst msg =
        if !buffered_total = 0 then Atomic.incr buffered;
        buffers.(dst) <- msg :: buffers.(dst);
        buffer_counts.(dst) <- buffer_counts.(dst) + 1;
        incr buffered_total
      in
      let flush_dst dst =
        match buffers.(dst) with
        | [] -> ()
        | msgs ->
          buffers.(dst) <- [];
          let c = buffer_counts.(dst) in
          buffer_counts.(dst) <- 0;
          (* [deliver] bumps [outstanding] before the push, and only
             then do we retire the buffered census — so no observer can
             see the frame in neither count. *)
          deliver ~dst (List.rev msgs);
          buffered_total := !buffered_total - c;
          if !buffered_total = 0 then Atomic.decr buffered
      in
      let flush_all () =
        if !buffered_total > 0 then
          for dst = 0 to n - 1 do
            flush_dst dst
          done
      in
      (* Detached handle, built in-domain: no shared Obs state touched. *)
      let obs_handle =
        match config.obs with
        | None -> None
        | Some _ -> Some (Obs.make_replica pid)
      in
      let ctx =
        {
          Protocol.pid;
          n;
          now = (fun () -> Unix.gettimeofday () -. t0);
          (* Every send path goes through the per-destination buffers,
             so one peer's messages keep their issue order relative to
             each other regardless of which entry point produced them.
             At the default threshold of 1 each message (or each
             [broadcast_batch] envelope) flushes immediately, matching
             the unbatched per-frame accounting exactly. *)
          send =
            (fun ~dst msg ->
              enqueue dst msg;
              if buffer_counts.(dst) >= config.batch_every then flush_dst dst);
          broadcast =
            (fun msg ->
              for dst = 0 to n - 1 do
                if dst <> pid then begin
                  enqueue dst msg;
                  if buffer_counts.(dst) >= config.batch_every then
                    flush_dst dst
                end
              done);
          broadcast_batch =
            (fun msgs ->
              if msgs <> [] then
                for dst = 0 to n - 1 do
                  if dst <> pid then begin
                    List.iter (enqueue dst) msgs;
                    if buffer_counts.(dst) >= config.batch_every then
                      flush_dst dst
                  end
                done);
          (* No protocol core uses timers; the wall clock is real here,
             so a virtual-time timer has no meaning. *)
          set_timer = (fun ~delay:_ _ -> ());
          count_replay = (fun k -> l.l_replay <- l.l_replay + k);
          obs = obs_handle;
        }
      in
      let r = P.create ctx in
      replica := Some r;
      (* Start barrier: nobody issues until every replica exists, so no
         frame can arrive at a mailbox whose owner isn't ready. *)
      Atomic.incr started;
      while Atomic.get started < n do
        Domain.cpu_relax ()
      done;
      let t_begin = Unix.gettimeofday () in
      let script = workload.(pid) in
      let lats = Array.make (List.length script) 0.0 in
      let qout = ref [] in
      List.iteri
        (fun i inv ->
          drain ();
          (* Nanosecond monotonic stamps: at multicore rates one
             invocation costs well under a microsecond, which
             [Unix.gettimeofday]'s resolution floors to exactly 0.0 —
             degenerating every latency percentile. *)
          let s = Monotonic_clock.now () in
          (match inv with
          | Protocol.Invoke_update u ->
            l.l_updates <- l.l_updates + 1;
            (* Record the invocation before the sends it causes, so the
               per-domain stream preserves program order. *)
            (match rh with None -> () | Some h -> Obs.Recorder.invoke_update h);
            P.update r u ~on_done:ignore
          | Protocol.Invoke_query q ->
            l.l_queries <- l.l_queries + 1;
            (match rh with
            | None ->
              P.query r q ~on_result:ignore
            | Some h ->
              Obs.Recorder.invoke_query h ~omega:false;
              P.query r q ~on_result:(fun o -> qout := o :: !qout)));
          lats.(i) <-
            Int64.to_float (Int64.sub (Monotonic_clock.now ()) s) *. 1e-9;
          if config.flush_window > 0 && (i + 1) mod config.flush_window = 0
          then flush_all ())
        script;
      flush_all ();
      Atomic.decr clients_running;
      (* Quiescence: drain (and flush what the drains' receive handlers
         may have coalesced) until every client is done, no frame is in
         flight anywhere, and no domain holds buffered messages. The
         first domain to observe that state closes the mailboxes (a
         safety net for blocked waiters; by then every queue is
         provably empty). *)
      Mpsc.Backoff.reset idle_bk;
      while not (Atomic.get quiesced) do
        let before = l.l_received in
        drain ();
        flush_all ();
        if
          Atomic.get clients_running = 0
          && Atomic.get outstanding = 0
          && Atomic.get buffered = 0
        then begin
          if Atomic.compare_and_set quiesced false true then
            Array.iter Mpsc.close mailboxes
        end
        else begin
          if l.l_received <> before then Mpsc.Backoff.reset idle_bk;
          Mpsc.Backoff.once idle_bk
        end
      done;
      drain ();
      (match config.final_read with
      | None -> ()
      | Some q ->
        l.l_queries <- l.l_queries + 1;
        (match rh with
        | None -> ()
        | Some h -> Obs.Recorder.invoke_query h ~omega:true);
        P.query r q ~on_result:(fun o -> outputs.(pid) <- Some o));
      let t_end = Unix.gettimeofday () in
      spans.(pid) <- (t_begin, t_end);
      replicas.(pid) <- Some r;
      q_outputs.(pid) <- List.rev !qout;
      obs_handles.(pid) <- obs_handle;
      (* Domain metrics into this domain's private shard; merged into
         the run registry by the coordinating domain after the joins. *)
      (match config.obs with
      | None -> ()
      | Some _ ->
        let labels = [ ("pid", string_of_int pid) ] in
        let reg = shards.(pid) in
        Obs.Registry.inc ~by:(l.l_updates + l.l_queries)
          (Obs.Registry.counter reg ~labels "domain_ops");
        Obs.Registry.inc ~by:l.l_updates
          (Obs.Registry.counter reg ~labels "domain_updates");
        Obs.Registry.inc ~by:l.l_bytes
          (Obs.Registry.counter reg ~labels "domain_bytes_sent");
        Obs.Registry.inc ~by:l.l_frames
          (Obs.Registry.counter reg ~labels "domain_frames_sent");
        Obs.Registry.inc ~by:l.l_stalls
          (Obs.Registry.counter reg ~labels "mailbox_stalls");
        Obs.Registry.set
          (Obs.Registry.gauge reg ~labels "mailbox_depth")
          (float_of_int l.l_depth));
      reports.(pid) <-
        Some
          {
            pid;
            ops = l.l_updates + l.l_queries;
            updates = l.l_updates;
            queries = l.l_queries;
            frames_sent = l.l_frames;
            messages_sent = l.l_messages;
            bytes_sent = l.l_bytes;
            batches_sent = l.l_batches;
            messages_received = l.l_received;
            mailbox_stalls = l.l_stalls;
            mailbox_max_depth = l.l_depth;
            replay_steps = l.l_replay;
            latencies = lats;
          }
    in
    let handles = Array.init n (fun pid -> Domain.spawn (body pid)) in
    Array.iter Domain.join handles;
    let reports = Array.map Option.get reports in
    let replicas = Array.map Option.get replicas in
    let outputs =
      Array.to_list outputs
      |> List.mapi (fun pid o -> Option.map (fun o -> (pid, o)) o)
      |> List.filter_map Fun.id
    in
    let outputs_agree =
      match outputs with
      | [] -> true
      | (_, first) :: rest ->
        List.for_all (fun (_, o) -> P.equal_output first o) rest
    in
    let certificates_agree =
      match Array.to_list replicas with
      | [] -> true
      | r0 :: rest ->
        let c0 = P.certificate r0 in
        List.for_all (fun r -> P.certificate r = c0) rest
    in
    let starts = Array.map fst spans and ends = Array.map snd spans in
    let wall =
      Array.fold_left Float.max neg_infinity ends
      -. Array.fold_left Float.min infinity starts
    in
    let ops_total = Array.fold_left (fun acc r -> acc + r.ops) 0 reports in
    let updates_total =
      Array.fold_left (fun acc r -> acc + r.updates) 0 reports
    in
    (match config.obs with
    | None -> ()
    | Some o ->
      (* Fold the per-domain telemetry back in, post-join: adopt the
         detached replica handles, merge the registry shards. *)
      Array.iter
        (function Some h -> Obs.adopt o h | None -> ())
        obs_handles;
      Array.iter (fun s -> Obs.Registry.merge ~into:o.Obs.registry s) shards);
    {
      reports;
      replicas;
      outputs;
      query_outputs = q_outputs;
      outputs_agree;
      certificates_agree;
      log_lengths = Array.map (fun r -> P.log_length r) replicas;
      wall_seconds = wall;
      ops_total;
      updates_total;
      throughput =
        (if wall > 0.0 then float_of_int ops_total /. wall else 0.0);
    }

  (* Latency distribution across every domain's invocations. *)
  let latency_summary result =
    let all =
      Array.to_list result.reports
      |> List.concat_map (fun r -> Array.to_list r.latencies)
    in
    match all with [] -> None | l -> Some (Stats.summarize l)
end
