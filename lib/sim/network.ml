type delay_model =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Pareto of { scale : float; shape : float }

let draw_delay rng = function
  | Constant d -> d
  | Uniform { lo; hi } -> lo +. Prng.float rng (hi -. lo)
  | Exponential { mean } -> Prng.exponential rng ~mean
  | Pareto { scale; shape } -> Prng.pareto rng ~scale ~shape

type partition = { from_time : float; to_time : float; group : int list }

type 'msg t = {
  engine : Engine.t;
  rng : Prng.t;
  metrics : Metrics.t;
  n : int;
  fifo : bool;
  partitions : partition list;
  envelope : int;  (** per-frame wire overhead, amortised by batching *)
  delay : delay_model;
  record_delivery :
    (sent:float -> received:float -> src:int -> dst:int -> 'msg -> unit) option;
  wire_size : 'msg -> int;
  deliver : dst:int -> src:int -> 'msg -> unit;
  crashed : bool array;
  last_delivery : float array array;  (** per (src, dst), for FIFO channels *)
}

let create ~engine ~rng ~metrics ~n ?(fifo = false) ?(partitions = [])
    ?(envelope = 0) ?record_delivery ~delay ~wire_size ~deliver () =
  if envelope < 0 then invalid_arg "Network.create: envelope must be non-negative";
  {
    engine;
    rng;
    metrics;
    n;
    fifo;
    partitions;
    envelope;
    delay;
    record_delivery;
    wire_size;
    deliver;
    crashed = Array.make n false;
    last_delivery = Array.init n (fun _ -> Array.make n 0.0);
  }

let separated t ~src ~dst ~at =
  List.find_opt
    (fun p ->
      p.from_time <= at && at < p.to_time
      && List.mem src p.group <> List.mem dst p.group)
    t.partitions

(* Earliest time >= [at] when src and dst are connected: partitions only
   delay messages (the network stays reliable). *)
let rec connected_time t ~src ~dst ~at =
  match separated t ~src ~dst ~at with
  | None -> at
  | Some p -> connected_time t ~src ~dst ~at:p.to_time

(* One wire frame from [src] to [dst] carrying [msgs] in order: one
   delay draw, one envelope, one delivery event. A singleton frame is
   exactly the seed's per-message [enqueue] (with the default zero
   envelope the metrics are bit-identical). *)
let enqueue t ~src ~dst msgs =
  let now = Engine.now t.engine in
  let count = List.length msgs in
  t.metrics.Metrics.messages_sent <- t.metrics.Metrics.messages_sent + count;
  t.metrics.Metrics.bytes_sent <-
    t.metrics.Metrics.bytes_sent + t.envelope
    + List.fold_left (fun acc m -> acc + t.wire_size m) 0 msgs;
  if count > 1 then
    t.metrics.Metrics.batches_sent <- t.metrics.Metrics.batches_sent + 1;
  let arrival =
    if src = dst then now (* a process receives its own broadcast instantly *)
    else begin
      let departure = connected_time t ~src ~dst ~at:now in
      let arrival = departure +. draw_delay t.rng t.delay in
      if t.fifo then Float.max arrival t.last_delivery.(src).(dst) else arrival
    end
  in
  if t.fifo then t.last_delivery.(src).(dst) <- arrival;
  Engine.schedule_at t.engine ~time:arrival (fun () ->
      if t.crashed.(dst) then
        t.metrics.Metrics.messages_dropped <-
          t.metrics.Metrics.messages_dropped + count
      else
        List.iter
          (fun msg ->
            t.metrics.Metrics.messages_delivered <-
              t.metrics.Metrics.messages_delivered + 1;
            t.metrics.Metrics.delivery_latency_sum <-
              t.metrics.Metrics.delivery_latency_sum +. (arrival -. now);
            (match t.record_delivery with
            | Some record -> record ~sent:now ~received:arrival ~src ~dst msg
            | None -> ());
            t.deliver ~dst ~src msg)
          msgs)

let send t ~src ~dst msg =
  if dst < 0 || dst >= t.n then invalid_arg "Network.send: bad destination";
  if t.crashed.(src) then
    t.metrics.Metrics.messages_dropped <- t.metrics.Metrics.messages_dropped + 1
  else enqueue t ~src ~dst [ msg ]

let broadcast t ~src msg =
  for dst = 0 to t.n - 1 do
    if dst <> src then send t ~src ~dst msg
  done

let send_batch t ~src ~dst msgs =
  if dst < 0 || dst >= t.n then invalid_arg "Network.send_batch: bad destination";
  match msgs with
  | [] -> ()
  | msgs ->
    if t.crashed.(src) then
      t.metrics.Metrics.messages_dropped <-
        t.metrics.Metrics.messages_dropped + List.length msgs
    else enqueue t ~src ~dst msgs

let broadcast_batch t ~src msgs =
  if msgs <> [] then
    for dst = 0 to t.n - 1 do
      if dst <> src then send_batch t ~src ~dst msgs
    done

let crash t pid = t.crashed.(pid) <- true

let is_crashed t pid = t.crashed.(pid)

let alive t =
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (if t.crashed.(i) then acc else i :: acc)
  in
  collect (t.n - 1) []
