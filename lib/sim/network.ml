type delay_model =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Pareto of { scale : float; shape : float }

let draw_delay rng = function
  | Constant d -> d
  | Uniform { lo; hi } -> lo +. Prng.float rng (hi -. lo)
  | Exponential { mean } -> Prng.exponential rng ~mean
  | Pareto { scale; shape } -> Prng.pareto rng ~scale ~shape

type partition = { from_time : float; to_time : float; group : int list }

(* Dynamic membership: a replica can be scheduled to join the run late,
   leave it mid-flight and rejoin later. [Join] covers both the fresh
   joiner (no prior state) and is distinguished from [Rejoin] only in
   what the runner journals; the network treats both as "attach". *)
type churn_action = Join | Leave | Rejoin

type churn_event = { time : float; pid : int; action : churn_action }

let churn_action_name = function
  | Join -> "join"
  | Leave -> "leave"
  | Rejoin -> "rejoin"

let churn_action_of_name = function
  | "join" -> Some Join
  | "leave" -> Some Leave
  | "rejoin" -> Some Rejoin
  | _ -> None

(* Per-replica telemetry handles, resolved once at creation so the hot
   path never looks anything up by name. *)
type net_obs = {
  o : Obs.t;
  sent : Obs.Registry.counter array;
  bytes : Obs.Registry.counter array;
  delivered : Obs.Registry.counter array;
  dropped : Obs.Registry.counter array;
  batches : Obs.Registry.counter array;
  latency : Obs.Registry.hist array;
}

type 'msg t = {
  engine : Engine.t;
  rng : Prng.t;
  metrics : Metrics.t;
  n : int;
  fifo : bool;
  partitions : partition list;
  envelope : int;  (** per-frame wire overhead, amortised by batching *)
  delay : delay_model;
  record_delivery :
    (sent:float -> received:float -> src:int -> dst:int -> 'msg -> unit) option;
  wire_size : 'msg -> int;
  deliver : dst:int -> src:int -> 'msg -> unit;
  crashed : bool array;
  offline : bool array;
      (** detached by churn: drops frames like a crash, but reversible *)
  last_delivery : float array array;  (** per (src, dst), for FIFO channels *)
  obs : net_obs option;
}

let make_net_obs o n =
  let per name =
    Array.init n (fun pid ->
        Obs.Registry.counter o.Obs.registry
          ~labels:[ ("pid", string_of_int pid) ]
          name)
  in
  {
    o;
    sent = per "messages_sent";
    bytes = per "bytes_sent";
    delivered = per "messages_delivered";
    dropped = per "messages_dropped";
    batches = per "batches_sent";
    latency =
      Array.init n (fun pid ->
          Obs.Registry.hist o.Obs.registry
            ~labels:[ ("pid", string_of_int pid) ]
            "delivery_latency");
  }

let create ~engine ~rng ~metrics ~n ?(fifo = false) ?(partitions = [])
    ?(envelope = 0) ?record_delivery ?obs ~delay ~wire_size ~deliver () =
  if envelope < 0 then invalid_arg "Network.create: envelope must be non-negative";
  {
    engine;
    rng;
    metrics;
    n;
    fifo;
    partitions;
    envelope;
    delay;
    record_delivery;
    wire_size;
    deliver;
    crashed = Array.make n false;
    offline = Array.make n false;
    last_delivery = Array.init n (fun _ -> Array.make n 0.0);
    obs = Option.map (fun o -> make_net_obs o n) obs;
  }

let ambient t =
  match t.obs with None -> None | Some no -> Obs.Span.active no.o.Obs.spans

let journal t f =
  match t.obs with
  | None -> ()
  | Some no -> (
    match no.o.Obs.journal with
    | None -> ()
    | Some j -> Obs.Journal.record j (f ()))

(* Each message leaves stamped with the span that was ambient when it
   was handed to the network (not when a buffered batch flushes). *)
let stamp t msgs =
  let span = ambient t in
  List.map (fun m -> (m, span)) msgs

let separated t ~src ~dst ~at =
  List.find_opt
    (fun p ->
      p.from_time <= at && at < p.to_time
      && List.mem src p.group <> List.mem dst p.group)
    t.partitions

(* Earliest time >= [at] when src and dst are connected: partitions only
   delay messages (the network stays reliable). *)
let rec connected_time t ~src ~dst ~at =
  match separated t ~src ~dst ~at with
  | None -> at
  | Some p -> connected_time t ~src ~dst ~at:p.to_time

(* One wire frame from [src] to [dst] carrying [msgs] in order: one
   delay draw, one envelope, one delivery event. A singleton frame is
   exactly the seed's per-message [enqueue] (with the default zero
   envelope the metrics are bit-identical). [msgs] are (message, span)
   pairs; stamped messages additionally pay [span_wire_bytes] each. *)
let enqueue t ~src ~dst msgs =
  let now = Engine.now t.engine in
  let count = List.length msgs in
  let span_bytes =
    match t.obs with
    | None -> 0
    | Some no ->
      no.o.Obs.span_wire_bytes
      * List.length (List.filter (fun (_, s) -> s <> None) msgs)
  in
  let frame_bytes =
    t.envelope + span_bytes
    + List.fold_left (fun acc (m, _) -> acc + t.wire_size m) 0 msgs
  in
  t.metrics.Metrics.messages_sent <- t.metrics.Metrics.messages_sent + count;
  t.metrics.Metrics.bytes_sent <- t.metrics.Metrics.bytes_sent + frame_bytes;
  if count > 1 then
    t.metrics.Metrics.batches_sent <- t.metrics.Metrics.batches_sent + 1;
  (match t.obs with
  | None -> ()
  | Some no ->
    Obs.Registry.inc ~by:count no.sent.(src);
    Obs.Registry.inc ~by:frame_bytes no.bytes.(src);
    if count > 1 then Obs.Registry.inc no.batches.(src);
    List.iter
      (fun (_, span) -> Obs.Span.record_send no.o.Obs.spans ~span ~src ~time:now)
      msgs);
  let arrival =
    if src = dst then now (* a process receives its own broadcast instantly *)
    else begin
      let departure = connected_time t ~src ~dst ~at:now in
      let arrival = departure +. draw_delay t.rng t.delay in
      if t.fifo then Float.max arrival t.last_delivery.(src).(dst) else arrival
    end
  in
  if t.fifo then t.last_delivery.(src).(dst) <- arrival;
  journal t (fun () ->
      Obs.Journal.Frame
        {
          src;
          dst;
          count;
          bytes = frame_bytes;
          sent = now;
          arrival;
          spans = List.map snd msgs;
        });
  Engine.schedule_at t.engine ~time:arrival (fun () ->
      if t.crashed.(dst) || t.offline.(dst) then begin
        t.metrics.Metrics.messages_dropped <-
          t.metrics.Metrics.messages_dropped + count;
        journal t (fun () ->
            Obs.Journal.Drop { pid = dst; count; time = arrival });
        match t.obs with
        | None -> ()
        | Some no -> Obs.Registry.inc ~by:count no.dropped.(dst)
      end
      else begin
        journal t (fun () ->
            Obs.Journal.Deliver { src; dst; count; time = arrival });
        List.iter
          (fun (msg, span) ->
            t.metrics.Metrics.messages_delivered <-
              t.metrics.Metrics.messages_delivered + 1;
            t.metrics.Metrics.delivery_latency_sum <-
              t.metrics.Metrics.delivery_latency_sum +. (arrival -. now);
            (match t.record_delivery with
            | Some record -> record ~sent:now ~received:arrival ~src ~dst msg
            | None -> ());
            match t.obs with
            | None -> t.deliver ~dst ~src msg
            | Some no ->
              Obs.Registry.inc no.delivered.(dst);
              Obs.Registry.observe no.latency.(dst) (arrival -. now);
              Obs.Span.record_deliver no.o.Obs.spans ~span ~src ~dst ~sent:now
                ~received:arrival;
              (* Restore the ambient span afterwards so relays triggered
                 by this delivery stamp with the delivered span only
                 while processing it. *)
              let saved = Obs.Span.active no.o.Obs.spans in
              Obs.Span.set_active no.o.Obs.spans span;
              t.deliver ~dst ~src msg;
              Obs.Span.record_apply no.o.Obs.spans ~span ~pid:dst ~time:arrival;
              Obs.Span.set_active no.o.Obs.spans saved)
          msgs
      end)

let drop_from_src t ~src count =
  t.metrics.Metrics.messages_dropped <-
    t.metrics.Metrics.messages_dropped + count;
  journal t (fun () ->
      Obs.Journal.Drop { pid = src; count; time = Engine.now t.engine });
  match t.obs with
  | None -> ()
  | Some no -> Obs.Registry.inc ~by:count no.dropped.(src)

let send t ~src ~dst msg =
  if dst < 0 || dst >= t.n then invalid_arg "Network.send: bad destination";
  if t.crashed.(src) || t.offline.(src) then drop_from_src t ~src 1
  else enqueue t ~src ~dst (stamp t [ msg ])

let broadcast t ~src msg =
  for dst = 0 to t.n - 1 do
    if dst <> src then send t ~src ~dst msg
  done

let send_stamped_batch t ~src ~dst msgs =
  if dst < 0 || dst >= t.n then invalid_arg "Network.send_batch: bad destination";
  match msgs with
  | [] -> ()
  | msgs ->
    if t.crashed.(src) || t.offline.(src) then
      drop_from_src t ~src (List.length msgs)
    else enqueue t ~src ~dst msgs

let send_batch t ~src ~dst msgs = send_stamped_batch t ~src ~dst (stamp t msgs)

let broadcast_stamped_batch t ~src msgs =
  if msgs <> [] then
    for dst = 0 to t.n - 1 do
      if dst <> src then send_stamped_batch t ~src ~dst msgs
    done

let broadcast_batch t ~src msgs = broadcast_stamped_batch t ~src (stamp t msgs)

let crash t pid = t.crashed.(pid) <- true

let is_crashed t pid = t.crashed.(pid)

(* Churn: an offline replica behaves like a crashed one on the wire
   (frames to and from it are dropped) but can come back. In-flight
   frames scheduled before the detach are judged at delivery time, so
   a frame that arrives during the offline window is lost — exactly
   the semantics a rejoiner must repair via catch-up. *)
let detach t pid = t.offline.(pid) <- true

let attach t pid = t.offline.(pid) <- false

let is_offline t pid = t.offline.(pid)

(* Whether src and dst are on opposite sides of some partition at [at];
   catch-up transfers consult this so a joiner cannot sync across a
   partition it could not have talked through. *)
let separated_at t ~src ~dst ~at = separated t ~src ~dst ~at <> None

let alive t =
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (if t.crashed.(i) then acc else i :: acc)
  in
  collect (t.n - 1) []
