type t = {
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable messages_delivered : int;
  mutable messages_dropped : int;
  mutable updates_invoked : int;
  mutable queries_invoked : int;
  mutable ops_completed : int;
  mutable ops_incomplete : int;
  mutable replay_steps : int;
  mutable batches_sent : int;
  mutable delivery_latency_sum : float;
  mutable snapshots_absorbed : int;
  mutable catchup_bytes : int;
}

let create () =
  {
    messages_sent = 0;
    bytes_sent = 0;
    messages_delivered = 0;
    messages_dropped = 0;
    updates_invoked = 0;
    queries_invoked = 0;
    ops_completed = 0;
    ops_incomplete = 0;
    replay_steps = 0;
    batches_sent = 0;
    delivery_latency_sum = 0.0;
    snapshots_absorbed = 0;
    catchup_bytes = 0;
  }

let mean_delivery_latency t =
  if t.messages_delivered = 0 then 0.0
  else t.delivery_latency_sum /. float_of_int t.messages_delivered

let pp ppf t =
  Format.fprintf ppf
    "msgs=%d bytes=%d delivered=%d dropped=%d updates=%d queries=%d completed=%d \
     incomplete=%d replay=%d batches=%d mean_delivery=%.3f snapshots=%d \
     catchup_bytes=%d"
    t.messages_sent t.bytes_sent t.messages_delivered t.messages_dropped
    t.updates_invoked t.queries_invoked t.ops_completed t.ops_incomplete
    t.replay_steps t.batches_sent (mean_delivery_latency t)
    t.snapshots_absorbed t.catchup_bytes

let to_registry t registry =
  let labels = [ ("scope", "run") ] in
  let count name v =
    Obs.Registry.inc ~by:v (Obs.Registry.counter registry ~labels name)
  in
  count "messages_sent" t.messages_sent;
  count "bytes_sent" t.bytes_sent;
  count "messages_delivered" t.messages_delivered;
  count "messages_dropped" t.messages_dropped;
  count "updates_invoked" t.updates_invoked;
  count "queries_invoked" t.queries_invoked;
  count "ops_completed" t.ops_completed;
  count "ops_incomplete" t.ops_incomplete;
  count "replay_steps" t.replay_steps;
  count "batches_sent" t.batches_sent;
  count "snapshots_absorbed" t.snapshots_absorbed;
  count "catchup_bytes" t.catchup_bytes;
  Obs.Registry.set
    (Obs.Registry.gauge registry ~labels "mean_delivery_latency")
    (mean_delivery_latency t)
