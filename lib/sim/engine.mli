(** Discrete-event simulation core.

    The engine is a clock plus a priority queue of timestamped thunks.
    Determinism: ties are broken by insertion sequence number, and all
    randomness in the layers above comes from {!Prng} streams derived
    from the run's root seed, so a run is a pure function of its seed —
    the property that makes the adversarial-schedule experiments
    reproducible. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run the thunk [delay] time units from now. [delay] must be finite
    and non-negative. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant; times in the past execute "now". *)

val pending : t -> int

val run : ?until:float -> t -> unit
(** Execute events in time order until the queue is empty or the clock
    would pass [until]. *)

val step : t -> bool
(** Execute the single next event; [false] if the queue was empty. *)
