(** Interface between a replicated-object protocol and the simulator.

    A protocol instance lives on one process. The runner hands it a
    {!ctx} with its communication capabilities at creation. Operations
    are asynchronous: wait-free protocols (Algorithm 1, Algorithm 2, the
    CRDTs) complete them in the same activation; quorum protocols (the
    ABD baseline) complete them from a later message receipt — the gap
    between the two is exactly experiment C4. *)

type ('u, 'q) invocation = Invoke_update of 'u | Invoke_query of 'q
(** One scripted operation of a workload; shared across protocols so
    workload generators are protocol-independent. *)

type 'msg ctx = {
  pid : int;
  n : int;
  now : unit -> float;
  send : dst:int -> 'msg -> unit;
  broadcast : 'msg -> unit;
      (** to every process except self: a sender receives its own
          message instantaneously (Section VII.B), which protocols model
          by applying their own updates synchronously *)
  broadcast_batch : 'msg list -> unit;
      (** semantically [List.iter broadcast], but the transport may pack
          the messages into one wire frame per destination — amortising
          the per-message envelope overhead — and delivers the batch
          back-to-back in order. Observable only in the message/byte
          metrics, never in protocol outcomes. *)
  set_timer : delay:float -> (unit -> unit) -> unit;
  count_replay : int -> unit;
      (** report update applications done while answering a query (C2) *)
  obs : Obs.replica option;
      (** telemetry handle for this replica; [None] (the default
          everywhere telemetry is off) keeps the protocol on the exact
          seed code path. Protocol cores attach the handle's profile to
          their op-log so replay costs surface per replica. *)
}

module type PROTOCOL = sig
  (** The object's abstract data type (its sequential specification),
      re-exported flat so instances can be constrained with plain
      [with type] equalities. *)
  include Uqadt.S

  type t
  (** One replica's protocol state. *)

  type message

  val protocol_name : string

  val create : message ctx -> t

  val update : t -> update -> on_done:(unit -> unit) -> unit
  (** Perform an update; [on_done] when it is locally complete. *)

  val query : t -> query -> on_result:(output -> unit) -> unit

  val receive : t -> src:int -> message -> unit

  val receive_batch : t -> src:int -> message list -> unit
  (** Deliver a coalesced envelope from one peer, observably equivalent
      to [List.iter (receive t ~src)] in list order. Protocols with a
      batch-aware core (one clock merge, one log merge pass) override
      the default per-message iteration. *)

  val message_wire_size : message -> int

  val describe_message : message -> string
  (** Short human-readable rendering, used by execution traces. *)

  val log_length : t -> int
  (** Retained update-log entries (C3: GC ablation). *)

  val metadata_bytes : t -> int
  (** Approximate footprint of the replica's protocol metadata. *)

  val certificate : t -> (int * update) list option
  (** The replica's current linearization of the updates it knows, as
      [(origin pid, update)] pairs, if the protocol maintains one.
      At quiescence all correct replicas of an update-consistent
      protocol must return the {e same} list, and executing it must
      explain their final reads — the checkable core of Proposition 4
      at scales where the generic SUC search is intractable. *)

  val snapshot : t -> string option
  (** Serialized replica state for churn catch-up: a joiner or rejoiner
      absorbs a live peer's snapshot to repair the frames it missed
      while detached. [None] when the protocol carries no persistence
      codec — such replicas transfer nothing and converge through the
      normal message flow alone. *)

  val absorb : t -> string -> bool
  (** Merge a peer's {!snapshot} into this replica by timestamp union —
      local state survives (a rejoiner keeps its crash-time log), so
      absorbing is idempotent and commutative, as Proposition 4
      requires. Returns [false] when the protocol does not support
      snapshots or the payload fails to decode. *)
end
