(** A client/server topology over the replica protocols.

    The paper's model has the {e processes themselves} replicating the
    object; deployed systems put replicas behind a service and have
    clients attach to one of them. This driver simulates that: each
    client sends its operations to a {e home} replica over a
    client-to-replica link, waits for the reply, and — when its home has
    crashed — {e fails over} to the next live replica and retries.

    The extracted history has one line per {b client}. That changes
    which criteria hold: a client that read through a well-informed
    replica and then fails over to a less-informed one sees its session
    travel back in time, so pipelined (session) consistency of the
    client history is lost — while update consistency survives, because
    it constrains only the converged state. Experiment S1 measures
    exactly this.

    Restricted to wait-free replica protocols (a replica must answer a
    forwarded operation within its own activation).

    Besides the closed-loop clients, a run can carry an {e open-loop}
    arrival process (a flash crowd): operations arrive at a planned,
    piecewise-constant rate regardless of how many are still in flight.
    Closed loops self-throttle — a slow system slows its own clients —
    so only an open load can reveal latency collapse under a spike.
    Experiment C8 measures exactly this. *)

type phase = { duration : float; rate : float }
(** One segment of an open-loop rate profile: [rate] arrivals per unit
    of simulated time for [duration] time units. *)

val arrival_times : rng:Prng.t -> phase list -> float list
(** Absolute arrival times (ascending) of a Poisson process stepping
    through the phases: exponential inter-arrival gaps of mean
    [1/rate] within each phase; [rate = 0.] phases are quiet time.
    @raise Invalid_argument on a negative rate or duration. *)

module Make (P : Protocol.PROTOCOL) : sig
  type open_loop = {
    plan : phase list;
    mix : Prng.t -> (P.update, P.query) Protocol.invocation list;
        (** drawn once per arrival, from a stream independent of the
            closed-loop clients'. The list is the arrival's {e fan-out}:
            its sub-operations are issued concurrently (a multi-key
            operation touching several shards); a singleton list is the
            ordinary one-op arrival *)
  }

  type config = {
    seed : int;
    n_replicas : int;
    n_clients : int;
    replica_delay : Network.delay_model;  (** replica-to-replica mesh *)
    client_delay : Network.delay_model;  (** one way, client ↔ replica *)
    think : Network.delay_model;
    crashes : (float * int) list;  (** replica crashes *)
    final_read : P.query option;
    open_loop : open_loop option;
        (** flash-crowd arrivals alongside the closed-loop scripts; with
            [None] (the default) the run is bit-identical to the seed *)
    obs : Obs.t option;
        (** when present, open-loop latencies are additionally recorded
            as the [open_op_latency{scope=open}] registry histogram *)
  }

  val default_config : n_replicas:int -> n_clients:int -> seed:int -> config

  type result = {
    history : (P.update, P.query, P.output) History.t;
        (** one process per client *)
    converged : bool;  (** final reads across clients agree *)
    failovers : int;
    metrics : Metrics.t;
    ops_completed : int;
    ops_abandoned : int;
        (** operations in flight to a replica that crashed before
            replying; the client retries elsewhere, so this counts
            retried requests, not lost ones *)
    open_completed : int;
    open_abandoned : int;
        (** arrivals with a sub-operation that found no live replica *)
    open_latencies : float list;
        (** per-arrival end-to-end latency (arrival to {e last}
            sub-operation reply received), in completion order — feed
            {!Stats.slo} for SLO verdicts. Open operations touch the
            replicas but are excluded from [history]: they carry no
            session, so session criteria do not apply to them. *)
    open_keyed_latencies : (int * float) list;
        (** per-sub-operation latency keyed by arrival index; collapses
            to the same per-arrival verdicts via {!Stats.slo_by_key}
            even when one arrival fans out to many shards *)
  }

  val run :
    config ->
    workload:(P.update, P.query) Protocol.invocation list array ->
    result
  (** [workload.(c)] is client [c]'s script; clients are initially
      assigned to replicas round-robin. *)
end
