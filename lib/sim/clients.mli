(** A client/server topology over the replica protocols.

    The paper's model has the {e processes themselves} replicating the
    object; deployed systems put replicas behind a service and have
    clients attach to one of them. This driver simulates that: each
    client sends its operations to a {e home} replica over a
    client-to-replica link, waits for the reply, and — when its home has
    crashed — {e fails over} to the next live replica and retries.

    The extracted history has one line per {b client}. That changes
    which criteria hold: a client that read through a well-informed
    replica and then fails over to a less-informed one sees its session
    travel back in time, so pipelined (session) consistency of the
    client history is lost — while update consistency survives, because
    it constrains only the converged state. Experiment S1 measures
    exactly this.

    Restricted to wait-free replica protocols (a replica must answer a
    forwarded operation within its own activation). *)

module Make (P : Protocol.PROTOCOL) : sig
  type config = {
    seed : int;
    n_replicas : int;
    n_clients : int;
    replica_delay : Network.delay_model;  (** replica-to-replica mesh *)
    client_delay : Network.delay_model;  (** one way, client ↔ replica *)
    think : Network.delay_model;
    crashes : (float * int) list;  (** replica crashes *)
    final_read : P.query option;
  }

  val default_config : n_replicas:int -> n_clients:int -> seed:int -> config

  type result = {
    history : (P.update, P.query, P.output) History.t;
        (** one process per client *)
    converged : bool;  (** final reads across clients agree *)
    failovers : int;
    metrics : Metrics.t;
    ops_completed : int;
    ops_abandoned : int;
        (** operations in flight to a replica that crashed before
            replying; the client retries elsewhere, so this counts
            retried requests, not lost ones *)
  }

  val run :
    config ->
    workload:(P.update, P.query) Protocol.invocation list array ->
    result
  (** [workload.(c)] is client [c]'s script; clients are initially
      assigned to replicas round-robin. *)
end
