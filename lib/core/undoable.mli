(** UQ-ADTs with invertible updates, for the Karsenty–Beaudouin-Lafon
    style construction ([22] in the paper, discussed in Section VII.C):
    "each update operation u contains an undo u⁻¹ such that for all s,
    T(T(s, u), u⁻¹) = s".

    A literal inverse update does not exist for all types (deleting an
    absent element is not undone by re-inserting it), so — as groupware
    systems do in practice — the inverse is captured {e at application
    time}: [apply_with_undo] returns a token that [undo] uses to restore
    the exact previous state. *)

module type S = sig
  include Uqadt.S

  type undo

  val apply_with_undo : state -> update -> state * undo

  val undo : state -> undo -> state
  (** [undo (apply_with_undo s u |> fst) (apply_with_undo s u |> snd) = s]. *)
end

(** The set with application-time undo tokens. *)
module Set :
  S
    with type state = Set_spec.state
     and type update = Set_spec.update
     and type query = Set_spec.query
     and type output = Set_spec.output

(** The single register: undo restores the overwritten value. *)
module Register :
  S
    with type state = Register_spec.state
     and type update = Register_spec.update
     and type query = Register_spec.query
     and type output = Register_spec.output

(** The counter: increments have a literal group inverse. *)
module Counter :
  S
    with type state = Counter_spec.state
     and type update = Counter_spec.update
     and type query = Counter_spec.query
     and type output = Counter_spec.output

(** The shared memory: undo restores the register's previous binding
    (including "unbound"). *)
module Memory :
  S
    with type state = Memory_spec.state
     and type update = Memory_spec.update
     and type query = Memory_spec.query
     and type output = Memory_spec.output
