module Make (A : Uqadt.S) = struct
  include A

  type message =
    | Update of { ts : Timestamp.t; update : A.update }
    | Heartbeat of { clock : int }

  type t = {
    ctx : message Protocol.ctx;
    clock : Lamport.t;
    mutable tail : (Timestamp.t * int * A.update) list;  (* sorted, after snapshot *)
    mutable tail_len : int;
    mutable snapshot : A.state;
    mutable snapshot_clock : int;  (* every entry with clock <= this is folded *)
    mutable compacted : int;
    heard : int array;  (* highest clock heard from each process *)
    mutable received_since_send : int;
  }

  let protocol_name = "universal-gc"

  let heartbeat_every = 8

  let create ctx =
    {
      ctx;
      clock = Lamport.create ();
      tail = [];
      tail_len = 0;
      snapshot = A.initial;
      snapshot_clock = 0;
      compacted = 0;
      heard = Array.make ctx.Protocol.n 0;
      received_since_send = 0;
    }

  let insert t entry =
    let ts, _, _ = entry in
    if ts.Timestamp.clock <= t.snapshot_clock then
      (* Unreachable by the stability argument; a violation would mean
         the pruning rule is wrong, so fail loudly rather than corrupt
         the linearization. *)
      invalid_arg "Gc: received an update below the stability bound";
    let rec place = function
      | [] -> [ entry ]
      | ((ts', _, _) as e) :: rest ->
        if Timestamp.compare ts ts' < 0 then entry :: e :: rest else e :: place rest
    in
    t.tail <- place t.tail;
    t.tail_len <- t.tail_len + 1

  (* Fold the stable prefix of the tail into the snapshot. *)
  let compact t =
    let bound = Array.fold_left min max_int t.heard in
    if bound > t.snapshot_clock then begin
      let rec fold = function
        | (ts, _, u) :: rest when ts.Timestamp.clock <= bound ->
          t.snapshot <- A.apply t.snapshot u;
          t.compacted <- t.compacted + 1;
          t.tail_len <- t.tail_len - 1;
          fold rest
        | rest -> rest
      in
      t.tail <- fold t.tail;
      t.snapshot_clock <- bound
    end

  let note_heard t pid clock = if clock > t.heard.(pid) then t.heard.(pid) <- clock

  let update t u ~on_done =
    let cl = Lamport.tick t.clock in
    let ts = Timestamp.make ~clock:cl ~pid:t.ctx.Protocol.pid in
    note_heard t t.ctx.Protocol.pid cl;
    insert t (ts, t.ctx.Protocol.pid, u);
    t.ctx.Protocol.broadcast (Update { ts; update = u });
    t.received_since_send <- 0;
    compact t;
    on_done ()

  let receive t ~src msg =
    (match msg with
    | Update { ts; update = u } ->
      Lamport.merge t.clock ts.Timestamp.clock;
      note_heard t src ts.Timestamp.clock;
      insert t (ts, src, u);
      t.received_since_send <- t.received_since_send + 1;
      if t.received_since_send >= heartbeat_every then begin
        (* Let idle processes contribute to everyone's stability bound. *)
        let cl = Lamport.value t.clock in
        note_heard t t.ctx.Protocol.pid cl;
        t.ctx.Protocol.broadcast (Heartbeat { clock = cl });
        t.received_since_send <- 0
      end
    | Heartbeat { clock } ->
      Lamport.merge t.clock clock;
      note_heard t src clock);
    compact t

  let query t q ~on_result =
    let (_ : int) = Lamport.tick t.clock in
    let state = List.fold_left (fun s (_, _, u) -> A.apply s u) t.snapshot t.tail in
    t.ctx.Protocol.count_replay t.tail_len;
    on_result (A.eval state q)

  let message_wire_size = function
    | Update { ts; update = u } -> Timestamp.wire_size ts + A.update_wire_size u
    | Heartbeat { clock } -> Wire.varint_size clock

  let describe_message = function
    | Update { ts; update = u } -> Format.asprintf "%a%a" A.pp_update u Timestamp.pp ts
    | Heartbeat { clock } -> Printf.sprintf "hb(%d)" clock

  let log_length t = t.tail_len

  let metadata_bytes t =
    List.fold_left
      (fun acc (ts, origin, u) ->
        acc + Timestamp.wire_size ts + Wire.varint_size origin + A.update_wire_size u)
      (Wire.varint_size t.snapshot_clock
      + Array.fold_left (fun acc c -> acc + Wire.varint_size c) 0 t.heard)
      t.tail

  (* The compacted prefix is discarded, so no full linearization
     certificate can be produced. *)
  let certificate _t = None

  let compacted t = t.compacted
end
