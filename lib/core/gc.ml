module Make (A : Uqadt.S) = struct
  include A

  type message =
    | Update of { ts : Timestamp.t; update : A.update }
    | Heartbeat of { clock : int }

  type t = {
    ctx : message Protocol.ctx;
    clock : Lamport.t;
    tail : (A.update, A.state) Oplog.t;  (* live suffix, after the snapshot *)
    mutable snapshot : A.state;
    mutable compacted : int;
    heard : int array;  (* highest clock heard from each process *)
    mutable received_since_send : int;
  }

  let protocol_name = "universal-gc"

  let heartbeat_every = 8

  let create ctx =
    let t =
      {
        ctx;
        clock = Lamport.create ();
        tail = Oplog.create ();
        snapshot = A.initial;
        compacted = 0;
        heard = Array.make ctx.Protocol.n 0;
        received_since_send = 0;
      }
    in
    Option.iter
      (fun (r : Obs.replica) -> Oplog.set_profile t.tail (Some r.profile))
      ctx.Protocol.obs;
    t

  (* The oplog's stability watermark is this replica's snapshot clock:
     every entry with clock <= watermark has been folded out. *)
  let snapshot_clock t = Oplog.watermark t.tail

  let insert t ts origin u =
    if ts.Timestamp.clock <= snapshot_clock t then
      (* Unreachable by the stability argument; a violation would mean
         the pruning rule is wrong, so fail loudly rather than corrupt
         the linearization. *)
      invalid_arg "Gc: received an update below the stability bound";
    ignore (Oplog.insert t.tail { Oplog.ts; origin; payload = u })

  (* Fold the stable prefix of the tail into the snapshot. *)
  let compact t =
    let bound = Array.fold_left min max_int t.heard in
    if bound > snapshot_clock t then begin
      let snapshot, folded =
        Oplog.compact t.tail ~upto_clock:bound ~apply:A.apply t.snapshot
      in
      t.snapshot <- snapshot;
      t.compacted <- t.compacted + folded
    end

  let note_heard t pid clock = if clock > t.heard.(pid) then t.heard.(pid) <- clock

  let update t u ~on_done =
    let cl = Lamport.tick t.clock in
    let ts = Timestamp.make ~clock:cl ~pid:t.ctx.Protocol.pid in
    note_heard t t.ctx.Protocol.pid cl;
    insert t ts t.ctx.Protocol.pid u;
    t.ctx.Protocol.broadcast (Update { ts; update = u });
    t.received_since_send <- 0;
    compact t;
    on_done ()

  let receive t ~src msg =
    (match msg with
    | Update { ts; update = u } ->
      Lamport.merge t.clock ts.Timestamp.clock;
      note_heard t src ts.Timestamp.clock;
      insert t ts src u;
      t.received_since_send <- t.received_since_send + 1;
      if t.received_since_send >= heartbeat_every then begin
        (* Let idle processes contribute to everyone's stability bound. *)
        let cl = Lamport.value t.clock in
        note_heard t t.ctx.Protocol.pid cl;
        t.ctx.Protocol.broadcast (Heartbeat { clock = cl });
        t.received_since_send <- 0
      end
    | Heartbeat { clock } ->
      Lamport.merge t.clock clock;
      note_heard t src clock);
    compact t

  let query t q ~on_result =
    let (_ : int) = Lamport.tick t.clock in
    let state =
      Oplog.fold (fun s e -> A.apply s e.Oplog.payload) t.snapshot t.tail
    in
    t.ctx.Protocol.count_replay (Oplog.length t.tail);
    on_result (A.eval state q)

  let receive_batch t ~src msgs = List.iter (receive t ~src) msgs

  let message_wire_size = function
    | Update { ts; update = u } -> Timestamp.wire_size ts + A.update_wire_size u
    | Heartbeat { clock } -> Wire.varint_size clock

  let describe_message = function
    | Update { ts; update = u } -> Format.asprintf "%a%a" A.pp_update u Timestamp.pp ts
    | Heartbeat { clock } -> Printf.sprintf "hb(%d)" clock

  let log_length t = Oplog.length t.tail

  let metadata_bytes t =
    Oplog.footprint t.tail ~payload_wire_size:A.update_wire_size
    + Wire.varint_size (snapshot_clock t)
    + Array.fold_left (fun acc c -> acc + Wire.varint_size c) 0 t.heard

  (* The compacted prefix is discarded, so no full linearization
     certificate can be produced. *)
  let certificate _t = None

  let snapshot _t = None

  let absorb _t _s = false

  let compacted t = t.compacted
end
