module type S = sig
  include Protocol.PROTOCOL

  val message_update : message -> update

  val local_log : t -> (Timestamp.t * int * update) list

  val encode_log :
    t -> encode_update:(Codec.Writer.t -> update -> unit) -> string

  val restore_log : t -> (Timestamp.t * int * update) list -> unit

  val clock_value : t -> int

  val advance_clock : t -> int -> unit
end

module Make (A : Uqadt.S) = struct
  include A

  type message = { ts : Timestamp.t; update : A.update }

  type t = {
    ctx : message Protocol.ctx;
    clock : Lamport.t;
    log : (A.update, A.state) Oplog.t;
  }

  let protocol_name = "universal"

  let checkpoint_interval = ref 32

  let create ctx =
    let t =
      {
        ctx;
        clock = Lamport.create ();
        log =
          Oplog.create ~checkpoint_interval:(max 0 !checkpoint_interval)
            ~query_cache:true ();
      }
    in
    Option.iter
      (fun (r : Obs.replica) -> Oplog.set_profile t.log (Some r.profile))
      ctx.Protocol.obs;
    t

  let update t u ~on_done =
    let cl = Lamport.tick t.clock in
    let ts = Timestamp.make ~clock:cl ~pid:t.ctx.Protocol.pid in
    (* Line 6: broadcast to all; the local copy is applied synchronously. *)
    ignore
      (Oplog.insert t.log { Oplog.ts; origin = t.ctx.Protocol.pid; payload = u });
    t.ctx.Protocol.broadcast { ts; update = u };
    on_done ()

  let receive t ~src { ts; update = u } =
    (* Line 9: clock_i <- max(clock_i, cl). *)
    Lamport.merge t.clock ts.Timestamp.clock;
    ignore (Oplog.insert t.log { Oplog.ts; origin = src; payload = u })

  let receive_batch t ~src msgs =
    (* A coalesced envelope: merge the clock once against the batch
       maximum (Lamport merge is a max, so folding it message-by-message
       lands on the same value) and merge the whole envelope into the
       log in one pass. *)
    match msgs with
    | [] -> ()
    | [ m ] -> receive t ~src m
    | msgs ->
      let cl =
        List.fold_left (fun acc m -> max acc m.ts.Timestamp.clock) 0 msgs
      in
      Lamport.merge t.clock cl;
      ignore
        (Oplog.insert_batch t.log
           (List.map (fun m -> { Oplog.ts = m.ts; origin = src; payload = m.update }) msgs)
          : int)

  let query t q ~on_result =
    (* Line 13: queries also advance the clock. *)
    let (_ : int) = Lamport.tick t.clock in
    (* Lines 14-17: replay the sorted log — from the deepest valid
       checkpoint, per Section VII.C. *)
    let state, steps = Oplog.replay t.log ~apply:A.apply ~initial:A.initial in
    t.ctx.Protocol.count_replay steps;
    on_result (A.eval state q)

  let message_wire_size { ts; update = u } =
    Timestamp.wire_size ts + A.update_wire_size u

  let describe_message { ts; update = u } =
    Format.asprintf "%a%a" A.pp_update u Timestamp.pp ts

  let log_length t = Oplog.length t.log

  let metadata_bytes t = Oplog.footprint t.log ~payload_wire_size:A.update_wire_size

  let certificate t =
    Some
      (List.rev
         (Oplog.fold (fun acc e -> (e.Oplog.origin, e.Oplog.payload) :: acc) [] t.log))

  (* Snapshot transfer needs an update codec the universal construction
     is parametric over; {!Persist.Catchup} supplies real implementations
     on top of the log/clock view below. *)
  let snapshot _t = None

  let absorb _t _s = false

  let message_update { update = u; _ } = u

  let local_log t = Oplog.to_list t.log

  let encode_log t ~encode_update =
    Oplog.encode ~update_wire_size:A.update_wire_size ~encode_update t.log

  let clock_value t = Lamport.value t.clock

  let advance_clock t v = Lamport.merge t.clock v

  let restore_log t entries =
    Oplog.load t.log entries;
    List.iter (fun (ts, _, _) -> Lamport.merge t.clock ts.Timestamp.clock) entries

  let checkpoints_live t = Oplog.checkpoints_live t.log
end
