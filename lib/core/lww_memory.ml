include Memory_spec

type message = { ts : Timestamp.t; x : int; v : int }

type t = {
  ctx : message Protocol.ctx;
  clock : Lamport.t;
  mutable mem : (Timestamp.t * int) Support.Int_map.t;  (* x -> (ts, v) *)
}

let protocol_name = "lww-memory"

let create ctx = { ctx; clock = Lamport.create (); mem = Support.Int_map.empty }

(* Line 11-13 of Algorithm 2: keep the write with the larger timestamp. *)
let consider t ts x v =
  match Support.Int_map.find_opt x t.mem with
  | Some (ts', _) when Timestamp.compare ts ts' < 0 -> ()
  | Some _ | None -> t.mem <- Support.Int_map.add x (ts, v) t.mem

let update t (Memory_spec.Write (x, v)) ~on_done =
  let cl = Lamport.tick t.clock in
  let ts = Timestamp.make ~clock:cl ~pid:t.ctx.Protocol.pid in
  consider t ts x v;
  t.ctx.Protocol.broadcast { ts; x; v };
  on_done ()

let receive t ~src:_ { ts; x; v } =
  Lamport.merge t.clock ts.Timestamp.clock;
  consider t ts x v

let query t (Memory_spec.Read x) ~on_result =
  let (_ : int) = Lamport.tick t.clock in
  (* Reads are O(1): no replay (count 0 for experiment C2). *)
  match Support.Int_map.find_opt x t.mem with
  | Some (_, v) -> on_result v
  | None -> on_result Memory_spec.initial_value

let receive_batch t ~src msgs = List.iter (receive t ~src) msgs

let message_wire_size { ts; x; v } =
  Timestamp.wire_size ts + Wire.pair_size (abs x) (abs v)

let describe_message { ts; x; v } = Format.asprintf "w(%d,%d)%a" x v Timestamp.pp ts

(* No update log at all: the whole point of Algorithm 2. *)
let log_length _t = 0

let metadata_bytes t =
  Support.Int_map.fold
    (fun x (ts, v) acc ->
      acc + Wire.varint_size (abs x) + Timestamp.wire_size ts + Wire.varint_size (abs v))
    t.mem 0

let certificate _t = None

let snapshot _t = None

let absorb _t _s = false

let register_count t = Support.Int_map.cardinal t.mem
