type 'u entry = { ts : Timestamp.t; origin : int; payload : 'u }

type ('u, 's) t = {
  mutable arr : 'u entry array;
  mutable len : int;
  interval : int;
  mutable checkpoints : (int * 's) list;
      (* (k, fold of the first k entries), k strictly descending *)
  mutable watermark : int;
  mutable profile : Obs.Profile.t option;
  query_cache : bool;
  mutable qcache : (int * 's) option;
      (* (k, fold of the first k entries) from the latest replay; like a
         checkpoint but free-floating: re-recorded at the log tail on
         every replay, so a query after a run of appends folds only the
         suffix that arrived since the previous query. *)
}

let create ?(checkpoint_interval = 0) ?(query_cache = false) () =
  if checkpoint_interval < 0 then
    invalid_arg "Oplog.create: checkpoint interval must be non-negative";
  {
    arr = [||];
    len = 0;
    interval = checkpoint_interval;
    checkpoints = [];
    watermark = 0;
    profile = None;
    query_cache;
    qcache = None;
  }

let set_profile t p = t.profile <- p

let profiled t f = match t.profile with None -> () | Some p -> f p

let checkpoint_interval t = t.interval

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Oplog.get: index out of bounds";
  t.arr.(i)

(* First position whose timestamp is greater than [ts]. Timestamps are
   (clock, pid) pairs and strictly totally ordered, so <= 0 vs > 0 is
   the only split that matters. *)
let locate t ts =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Timestamp.compare t.arr.(mid).ts ts <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let grow t entry =
  if t.len = Array.length t.arr then begin
    let arr = Array.make (max 8 (2 * t.len)) entry in
    Array.blit t.arr 0 arr 0 t.len;
    t.arr <- arr
  end

let insert_at t entry pos =
  Array.blit t.arr pos t.arr (pos + 1) (t.len - pos);
  t.arr.(pos) <- entry;
  profiled t (fun p ->
      let shift = t.len - pos in
      p.Obs.Profile.inserts <- p.Obs.Profile.inserts + 1;
      if shift = 0 then p.Obs.Profile.appends <- p.Obs.Profile.appends + 1
      else
        p.Obs.Profile.shift_distance <- p.Obs.Profile.shift_distance + shift);
  t.len <- t.len + 1;
  (* A late arrival invalidates every checkpoint past its position;
     an append (pos = previous length) keeps them all. *)
  if t.checkpoints <> [] then begin
    let before = List.length t.checkpoints in
    t.checkpoints <- List.filter (fun (k, _) -> k <= pos) t.checkpoints;
    profiled t (fun p ->
        p.Obs.Profile.checkpoints_dropped <-
          p.Obs.Profile.checkpoints_dropped + before
          - List.length t.checkpoints)
  end;
  (* Same rule for the query cache: a landing before the cached prefix
     changes the fold it memoised; at or after it leaves it valid. *)
  (match t.qcache with
  | Some (k, _) when pos < k -> t.qcache <- None
  | _ -> ());
  pos

let insert t entry =
  if entry.ts.Timestamp.clock <= t.watermark then
    invalid_arg "Oplog.insert: timestamp at or below the stability watermark";
  grow t entry;
  let pos = locate t entry.ts in
  (* Timestamps are unique run-wide, so an equal timestamp is the same
     update seen again — snapshot catch-up racing an in-flight frame
     makes delivery at-least-once under churn. Keep insert idempotent. *)
  if pos > 0 && Timestamp.compare t.arr.(pos - 1).ts entry.ts = 0 then pos - 1
  else insert_at t entry pos

(* Batch insertion: one stable sort of the envelope, one capacity
   check, one back-to-front merge pass over the backing array —
   O(n + k log k) for k incoming entries against n resident ones,
   where the sequential path pays k binary searches plus up to k
   suffix memmoves. Semantically identical to folding [insert] over
   the batch in order: duplicate timestamps (within the batch or
   against the log) are the same update delivered again and are
   skipped; checkpoints and the query cache are invalidated exactly as
   the sequence of single inserts would have invalidated them (every
   checkpoint above the lowest fresh landing position dies). *)
let rec insert_batch t entries =
  match entries with
  | [] -> 0
  | [ e ] ->
    let len0 = t.len in
    ignore (insert t e : int);
    t.len - len0
  | entries ->
    List.iter
      (fun e ->
        if e.ts.Timestamp.clock <= t.watermark then
          invalid_arg
            "Oplog.insert: timestamp at or below the stability watermark")
      entries;
    (* Stable sort, then drop in-batch duplicates keeping the first —
       the order the sequential inserts would have kept. *)
    let sorted =
      List.stable_sort (fun a b -> Timestamp.compare a.ts b.ts) entries
    in
    let inc =
      match sorted with
      | [] -> [||]
      | first :: rest ->
        let acc = ref [ first ] and last = ref first in
        List.iter
          (fun e ->
            if Timestamp.compare e.ts !last.ts <> 0 then begin
              acc := e :: !acc;
              last := e
            end)
          rest;
        Array.of_list (List.rev !acc)
    in
    let k = Array.length inc in
    (* Lowest landing position among fresh (non-duplicate) entries, in
       the pre-merge coordinate system: [locate] is monotone in the
       timestamp, so the first fresh candidate gives the minimum. All
       checkpoints strictly above it are what the sequential inserts
       would have dropped. *)
    let rec first_fresh i =
      if i >= k then None
      else
        let pos = locate t inc.(i).ts in
        if pos > 0 && Timestamp.compare t.arr.(pos - 1).ts inc.(i).ts = 0 then
          first_fresh (i + 1)
        else Some pos
    in
    (match first_fresh 0 with
    | None -> 0 (* every entry already resident: nothing to do *)
    | Some pos_min ->
      if t.checkpoints <> [] then begin
        let before = List.length t.checkpoints in
        t.checkpoints <- List.filter (fun (ck, _) -> ck <= pos_min) t.checkpoints;
        profiled t (fun p ->
            p.Obs.Profile.checkpoints_dropped <-
              p.Obs.Profile.checkpoints_dropped + before
              - List.length t.checkpoints)
      end;
      (match t.qcache with
      | Some (ck, _) when pos_min < ck -> t.qcache <- None
      | _ -> ());
      merge_batch t inc k)

(* Grow once to worst-case room, then merge from the back so every
   resident entry moves at most once. Duplicates against the log are
   skipped during the merge, leaving one contiguous gap (the write
   pointer stands still while a duplicate is consumed) closed by a
   single blit. *)
and merge_batch t inc k =
    let len0 = t.len in
    let need = len0 + k in
    if need > Array.length t.arr then begin
      let arr = Array.make (max 8 (max need (2 * len0))) inc.(0) in
      Array.blit t.arr 0 arr 0 len0;
      t.arr <- arr
    end;
    let i = ref (len0 - 1) and j = ref (k - 1) and w = ref (need - 1) in
    let dups = ref 0 and appended = ref 0 and moved = ref 0 in
    while !j >= 0 do
      if !i >= 0 then begin
        let c = Timestamp.compare t.arr.(!i).ts inc.(!j).ts in
        if c > 0 then begin
          t.arr.(!w) <- t.arr.(!i);
          incr moved;
          decr i;
          decr w
        end
        else if c = 0 then begin
          incr dups;
          decr j
        end
        else begin
          t.arr.(!w) <- inc.(!j);
          if !moved = 0 then incr appended;
          decr j;
          decr w
        end
      end
      else begin
        t.arr.(!w) <- inc.(!j);
        decr j;
        decr w
      end
    done;
    let fresh = k - !dups in
    if !dups > 0 then
      (* Close the gap the skipped duplicates left between the resident
         prefix [0 .. i] and the merged region above it. *)
      Array.blit t.arr (!i + 1 + !dups) t.arr (!i + 1)
        (need - !dups - (!i + 1));
    t.len <- len0 + fresh;
    profiled t (fun p ->
        p.Obs.Profile.inserts <- p.Obs.Profile.inserts + fresh;
        p.Obs.Profile.appends <- p.Obs.Profile.appends + !appended;
        p.Obs.Profile.shift_distance <- p.Obs.Profile.shift_distance + !moved);
    fresh

let iter f t =
  for i = 0 to t.len - 1 do
    f t.arr.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.arr.(i)
  done;
  !acc

let to_list t =
  List.init t.len (fun i ->
      let e = t.arr.(i) in
      (e.ts, e.origin, e.payload))

let load t entries =
  let entries =
    List.sort (fun (a, _, _) (b, _, _) -> Timestamp.compare a b) entries
  in
  t.arr <-
    Array.of_list
      (List.map (fun (ts, origin, payload) -> { ts; origin; payload }) entries);
  t.len <- Array.length t.arr;
  t.checkpoints <- [];
  t.qcache <- None;
  t.watermark <- 0

let replay t ~apply ~initial =
  let base, state =
    match t.checkpoints with [] -> (0, initial) | (k, s) :: _ -> (k, s)
  in
  (* The query cache is re-recorded at the tail of every replay, so it
     is at least as deep as any interval checkpoint unless an insert
     landed below it since the last query. Use whichever is deeper. *)
  let base, state =
    match t.qcache with
    | Some (k, s) when k >= base -> (k, s)
    | _ -> (base, state)
  in
  profiled t (fun p ->
      p.Obs.Profile.replays <- p.Obs.Profile.replays + 1;
      p.Obs.Profile.replay_steps <- p.Obs.Profile.replay_steps + t.len - base;
      if base > 0 then
        p.Obs.Profile.checkpoint_hits <- p.Obs.Profile.checkpoint_hits + 1
      else if t.interval > 0 then
        p.Obs.Profile.checkpoint_misses <- p.Obs.Profile.checkpoint_misses + 1);
  let state = ref state in
  for i = base to t.len - 1 do
    state := apply !state t.arr.(i).payload;
    (* Record states on the way so the next replay starts close to the
       end of the log. The head checkpoint is the deepest, so [i + 1 >
       base] never duplicates an existing one. *)
    if t.interval > 0 && (i + 1) mod t.interval = 0 then begin
      t.checkpoints <- (i + 1, !state) :: t.checkpoints;
      profiled t (fun p ->
          p.Obs.Profile.checkpoints_taken <- p.Obs.Profile.checkpoints_taken + 1)
    end
  done;
  if t.query_cache then t.qcache <- Some (t.len, !state);
  (!state, t.len - base)

let checkpoints_live t = List.length t.checkpoints

let watermark t = t.watermark

let compact t ~upto_clock ~apply snapshot =
  if upto_clock <= t.watermark then (snapshot, 0)
  else begin
    (* Entries sort by (clock, pid), so the stable prefix ends where an
       entry with clock > upto_clock would sort: below (upto_clock + 1, 0). *)
    let stop = locate t (Timestamp.make ~clock:upto_clock ~pid:max_int) in
    let state = ref snapshot in
    for i = 0 to stop - 1 do
      state := apply !state t.arr.(i).payload
    done;
    Array.blit t.arr stop t.arr 0 (t.len - stop);
    t.len <- t.len - stop;
    profiled t (fun p ->
        p.Obs.Profile.compactions <- p.Obs.Profile.compactions + 1;
        p.Obs.Profile.compacted_entries <-
          p.Obs.Profile.compacted_entries + stop;
        p.Obs.Profile.checkpoints_dropped <-
          p.Obs.Profile.checkpoints_dropped + List.length t.checkpoints);
    (* Checkpoint bases shifted by [stop]; simplest safe move is to
       drop the cache (compacting protocols do not use it). The query
       cache goes with them for the same reason: its base index and
       its folded-in prefix both moved out from under it. *)
    t.checkpoints <- [];
    t.qcache <- None;
    t.watermark <- upto_clock;
    (!state, stop)
  end

let footprint t ~payload_wire_size =
  fold
    (fun acc e ->
      acc + Timestamp.wire_size e.ts + Wire.varint_size e.origin
      + payload_wire_size e.payload)
    0 t

(* Codec: byte-for-byte the frame the seed Persist wrote. *)

let magic = "UCL"

let version = 1

let checksum s =
  let acc = ref 0 in
  String.iter (fun c -> acc := (!acc + Char.code c) land 0x3FFFFFFF) s;
  !acc

let encode_list ~encode_update entries =
  (* Capacity hint only (16 bytes/entry); the frame is identical either
     way, the writer just skips the doubling-realloc ladder. *)
  let w = Codec.Writer.create ~size:(8 + (16 * List.length entries)) () in
  String.iter (fun c -> Codec.Writer.u8 w (Char.code c)) magic;
  Codec.Writer.u8 w version;
  Codec.Writer.varint w (List.length entries);
  List.iter
    (fun (ts, origin, u) ->
      Codec.Writer.varint w ts.Timestamp.clock;
      Codec.Writer.varint w ts.Timestamp.pid;
      Codec.Writer.varint w origin;
      encode_update w u)
    entries;
  let body = Codec.Writer.contents w in
  let tail = Codec.Writer.create () in
  Codec.Writer.varint tail (checksum body);
  body ^ Codec.Writer.contents tail

let decode_list ~decode_update s =
  (* The frame is self-delimiting: decode the body first, then the
     trailing varint is the checksum of everything before it. *)
  let r = Codec.Reader.of_string s in
  String.iter
    (fun c ->
      if Codec.Reader.u8 r <> Char.code c then
        raise (Codec.Decode_error "log snapshot: bad magic"))
    magic;
  if Codec.Reader.u8 r <> version then
    raise (Codec.Decode_error "log snapshot: unsupported version");
  let count = Codec.Reader.varint r in
  let entries =
    List.init count (fun _ ->
        let clock = Codec.Reader.varint r in
        let pid = Codec.Reader.varint r in
        let origin = Codec.Reader.varint r in
        let u = decode_update r in
        (Timestamp.make ~clock ~pid, origin, u))
  in
  let body_len =
    String.length s
    - (let probe = Codec.Writer.create () in
       Codec.Writer.varint probe (Codec.Reader.varint r);
       if not (Codec.Reader.at_end r) then
         raise (Codec.Decode_error "log snapshot: trailing bytes");
       Codec.Writer.length probe)
  in
  let body = String.sub s 0 body_len in
  let declared =
    Codec.Reader.varint
      (Codec.Reader.of_string (String.sub s body_len (String.length s - body_len)))
  in
  if checksum body <> declared then
    raise (Codec.Decode_error "log snapshot: checksum mismatch");
  entries

(* Same frame as [encode_list], produced straight off the backing
   array: no [to_list] materialisation, and with [update_wire_size]
   available the buffer is pre-sized to the exact frame length so the
   writer never reallocates. This is the hot path for [Persist]
   snapshots of array-core replicas. *)
let encode ?update_wire_size ~encode_update t =
  let header_size = String.length magic + 1 + Wire.varint_size t.len in
  let body_size =
    match update_wire_size with
    | None -> header_size + (16 * t.len) (* capacity hint only *)
    | Some size ->
      let acc = ref header_size in
      for i = 0 to t.len - 1 do
        let e = t.arr.(i) in
        acc :=
          !acc + Timestamp.wire_size e.ts + Wire.varint_size e.origin
          + size e.payload
      done;
      !acc
  in
  (* + 5: room for the trailing checksum varint (<= 2^30 fits in 5). *)
  let w = Codec.Writer.create ~size:(body_size + 5) () in
  String.iter (fun c -> Codec.Writer.u8 w (Char.code c)) magic;
  Codec.Writer.u8 w version;
  Codec.Writer.varint w t.len;
  for i = 0 to t.len - 1 do
    let e = t.arr.(i) in
    Codec.Writer.varint w e.ts.Timestamp.clock;
    Codec.Writer.varint w e.ts.Timestamp.pid;
    Codec.Writer.varint w e.origin;
    encode_update w e.payload
  done;
  let body = Codec.Writer.contents w in
  Codec.Writer.varint w (checksum body);
  Codec.Writer.contents w

let decode ~decode_update t s = load t (decode_list ~decode_update s)
