(** Algorithm 2: the update-consistent shared memory.

    Updates are ordered exactly as in Algorithm 1, but because an
    overwritten register value can never be read again, a replica keeps
    only the newest (timestamp, value) per register: last-writer-wins,
    with the Lamport pair as the arbitration order. Reads and writes are
    O(1) (amortised, via the balanced map) and the state grows with the
    number of registers, not the number of operations — the paper's
    closing complexity claim, measured in experiment C2/C3. *)

include
  Protocol.PROTOCOL
    with type state = Memory_spec.state
     and type update = Memory_spec.update
     and type query = Memory_spec.query
     and type output = Memory_spec.output

val register_count : t -> int
