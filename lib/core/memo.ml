module Make (A : Uqadt.S) = struct
  include A

  type message = { ts : Timestamp.t; update : A.update }

  type t = {
    ctx : message Protocol.ctx;
    clock : Lamport.t;
    log : (A.update, A.state) Oplog.t;
  }

  let protocol_name = "universal-memo"

  let snapshot_interval = 32

  let create ctx =
    let t =
      {
        ctx;
        clock = Lamport.create ();
        log = Oplog.create ~checkpoint_interval:snapshot_interval ();
      }
    in
    Option.iter
      (fun (r : Obs.replica) -> Oplog.set_profile t.log (Some r.profile))
      ctx.Protocol.obs;
    t

  let update t u ~on_done =
    let cl = Lamport.tick t.clock in
    let ts = Timestamp.make ~clock:cl ~pid:t.ctx.Protocol.pid in
    ignore
      (Oplog.insert t.log { Oplog.ts; origin = t.ctx.Protocol.pid; payload = u });
    t.ctx.Protocol.broadcast { ts; update = u };
    on_done ()

  let receive t ~src { ts; update = u } =
    Lamport.merge t.clock ts.Timestamp.clock;
    ignore (Oplog.insert t.log { Oplog.ts; origin = src; payload = u })

  let query t q ~on_result =
    let (_ : int) = Lamport.tick t.clock in
    let state, steps = Oplog.replay t.log ~apply:A.apply ~initial:A.initial in
    t.ctx.Protocol.count_replay steps;
    on_result (A.eval state q)

  let receive_batch t ~src msgs = List.iter (receive t ~src) msgs

  let message_wire_size { ts; update = u } =
    Timestamp.wire_size ts + A.update_wire_size u

  let describe_message { ts; update = u } =
    Format.asprintf "%a%a" A.pp_update u Timestamp.pp ts

  let log_length t = Oplog.length t.log

  let metadata_bytes t = Oplog.footprint t.log ~payload_wire_size:A.update_wire_size

  let certificate t =
    Some
      (List.rev
         (Oplog.fold (fun acc e -> (e.Oplog.origin, e.Oplog.payload) :: acc) [] t.log))

  let snapshots_live t = Oplog.checkpoints_live t.log

  let snapshot _t = None

  let absorb _t _s = false
end
