module Make (A : Uqadt.S) = struct
  include A

  type message = { ts : Timestamp.t; update : A.update }

  type entry = { ets : Timestamp.t; origin : int; u : A.update }

  type t = {
    ctx : message Protocol.ctx;
    clock : Lamport.t;
    mutable log : entry array;  (* sorted by timestamp; only [len] used *)
    mutable len : int;
    mutable snapshots : (int * A.state) list;
        (* (k, state after the first k log entries), k descending *)
  }

  let protocol_name = "universal-memo"

  let snapshot_interval = 32

  let create ctx =
    { ctx; clock = Lamport.create (); log = [||]; len = 0; snapshots = [] }

  let grow t entry =
    if t.len = Array.length t.log then begin
      let log = Array.make (max 8 (2 * t.len)) entry in
      Array.blit t.log 0 log 0 t.len;
      t.log <- log
    end

  (* Position of the first entry with a timestamp greater than [ts]. *)
  let insert_position t ts =
    let rec scan i =
      if i = 0 then 0
      else if Timestamp.compare t.log.(i - 1).ets ts < 0 then i
      else scan (i - 1)
    in
    scan t.len

  let insert t entry =
    grow t entry;
    let pos = insert_position t entry.ets in
    Array.blit t.log pos t.log (pos + 1) (t.len - pos);
    t.log.(pos) <- entry;
    t.len <- t.len + 1;
    (* A late arrival invalidates every snapshot past its position. *)
    t.snapshots <- List.filter (fun (k, _) -> k <= pos) t.snapshots

  let update t u ~on_done =
    let cl = Lamport.tick t.clock in
    let ts = Timestamp.make ~clock:cl ~pid:t.ctx.Protocol.pid in
    insert t { ets = ts; origin = t.ctx.Protocol.pid; u };
    t.ctx.Protocol.broadcast { ts; update = u };
    on_done ()

  let receive t ~src { ts; update = u } =
    Lamport.merge t.clock ts.Timestamp.clock;
    insert t { ets = ts; origin = src; u }

  let query t q ~on_result =
    let (_ : int) = Lamport.tick t.clock in
    let base, state =
      match t.snapshots with [] -> (0, A.initial) | (k, s) :: _ -> (k, s)
    in
    let state = ref state in
    for i = base to t.len - 1 do
      state := A.apply !state t.log.(i).u;
      (* Record checkpoints on the way so the next query starts close to
         the end of the log. *)
      if (i + 1) mod snapshot_interval = 0 then t.snapshots <- (i + 1, !state) :: t.snapshots
    done;
    t.ctx.Protocol.count_replay (t.len - base);
    on_result (A.eval !state q)

  let message_wire_size { ts; update = u } =
    Timestamp.wire_size ts + A.update_wire_size u

  let describe_message { ts; update = u } =
    Format.asprintf "%a%a" A.pp_update u Timestamp.pp ts

  let log_length t = t.len

  let metadata_bytes t =
    let acc = ref 0 in
    for i = 0 to t.len - 1 do
      let e = t.log.(i) in
      acc := !acc + Timestamp.wire_size e.ets + Wire.varint_size e.origin + A.update_wire_size e.u
    done;
    !acc

  let certificate t =
    let rec collect i acc = if i < 0 then acc else collect (i - 1) ((t.log.(i).origin, t.log.(i).u) :: acc) in
    Some (collect (t.len - 1) [])

  let snapshots_live t = List.length t.snapshots
end
