module Make (A : Uqadt.S) (C : Update_codec.S with type update = A.update) = struct
  module G = Generic.Make (A)

  let magic = "UCL"

  let version = 1

  let checksum s =
    let acc = ref 0 in
    String.iter (fun c -> acc := (!acc + Char.code c) land 0x3FFFFFFF) s;
    !acc

  let encode_log entries =
    let w = Codec.Writer.create () in
    String.iter (fun c -> Codec.Writer.u8 w (Char.code c)) magic;
    Codec.Writer.u8 w version;
    Codec.Writer.varint w (List.length entries);
    List.iter
      (fun (ts, origin, u) ->
        Codec.Writer.varint w ts.Timestamp.clock;
        Codec.Writer.varint w ts.Timestamp.pid;
        Codec.Writer.varint w origin;
        C.encode w u)
      entries;
    let body = Codec.Writer.contents w in
    let tail = Codec.Writer.create () in
    Codec.Writer.varint tail (checksum body);
    body ^ Codec.Writer.contents tail

  let decode_log s =
    (* Split off the checksum: it is the trailing varint, so re-encode
       candidate lengths from the end. Simpler and unambiguous: compute
       over every prefix the checksum of that prefix and compare with
       the varint that follows it — the frame is self-delimiting, so
       decode the body first and the checksum after. *)
    let r = Codec.Reader.of_string s in
    String.iter
      (fun c ->
        if Codec.Reader.u8 r <> Char.code c then
          raise (Codec.Decode_error "log snapshot: bad magic"))
      magic;
    if Codec.Reader.u8 r <> version then
      raise (Codec.Decode_error "log snapshot: unsupported version");
    let count = Codec.Reader.varint r in
    let entries =
      List.init count (fun _ ->
          let clock = Codec.Reader.varint r in
          let pid = Codec.Reader.varint r in
          let origin = Codec.Reader.varint r in
          let u = C.decode r in
          (Timestamp.make ~clock ~pid, origin, u))
    in
    (* Everything before the current position is the body the writer
       checksummed. *)
    let body_len =
      String.length s
      - (let probe = Codec.Writer.create () in
         Codec.Writer.varint probe (Codec.Reader.varint r);
         if not (Codec.Reader.at_end r) then
           raise (Codec.Decode_error "log snapshot: trailing bytes");
         Codec.Writer.length probe)
    in
    let body = String.sub s 0 body_len in
    let declared =
      Codec.Reader.varint (Codec.Reader.of_string (String.sub s body_len (String.length s - body_len)))
    in
    if checksum body <> declared then
      raise (Codec.Decode_error "log snapshot: checksum mismatch");
    entries

  let snapshot replica = encode_log (G.local_log replica)

  let restore replica s = G.restore_log replica (decode_log s)

  (* Full-fidelity replica snapshots: the log frame plus the exact
     Lamport clock. [restore] alone under-restores the clock (queries
     tick it without logging anything), which is fine for crash
     recovery — the clock only needs to move forward — but not for the
     model checker's checkpointed replay, where a rewound replica must
     be bit-identical to the one that was snapshotted. *)

  let replica_magic = "UCS"

  let snapshot_replica replica =
    let w = Codec.Writer.create () in
    String.iter (fun c -> Codec.Writer.u8 w (Char.code c)) replica_magic;
    Codec.Writer.u8 w version;
    Codec.Writer.varint w (G.clock_value replica);
    Codec.Writer.byte_string w (encode_log (G.local_log replica));
    Codec.Writer.contents w

  let restore_replica replica s =
    let r = Codec.Reader.of_string s in
    String.iter
      (fun c ->
        if Codec.Reader.u8 r <> Char.code c then
          raise (Codec.Decode_error "replica snapshot: bad magic"))
      replica_magic;
    if Codec.Reader.u8 r <> version then
      raise (Codec.Decode_error "replica snapshot: unsupported version");
    let clock = Codec.Reader.varint r in
    let log = decode_log (Codec.Reader.byte_string r) in
    if not (Codec.Reader.at_end r) then
      raise (Codec.Decode_error "replica snapshot: trailing bytes");
    G.restore_log replica log;
    G.advance_clock replica clock
end
