module type LOG_VIEW = sig
  type t

  type update

  val local_log : t -> (Timestamp.t * int * update) list

  val encode_log :
    t -> encode_update:(Codec.Writer.t -> update -> unit) -> string

  val restore_log : t -> (Timestamp.t * int * update) list -> unit

  val clock_value : t -> int

  val advance_clock : t -> int -> unit
end

module Over (G : LOG_VIEW) (C : Update_codec.S with type update = G.update) =
struct
  (* The log frame itself ("UCL", version, entries, checksum) is the
     oplog substrate's single codec path; the replica picks the fastest
     encoder for its storage (array cores stream the backing array). *)
  let encode_log entries = Oplog.encode_list ~encode_update:C.encode entries

  let decode_log s = Oplog.decode_list ~decode_update:C.decode s

  let snapshot replica = G.encode_log replica ~encode_update:C.encode

  let restore replica s = G.restore_log replica (decode_log s)

  (* Full-fidelity replica snapshots: the log frame plus the exact
     Lamport clock. [restore] alone under-restores the clock (queries
     tick it without logging anything), which is fine for crash
     recovery — the clock only needs to move forward — but not for the
     model checker's checkpointed replay, where a rewound replica must
     be bit-identical to the one that was snapshotted. *)

  let replica_magic = "UCS"

  let version = 1

  let snapshot_replica replica =
    let log = G.encode_log replica ~encode_update:C.encode in
    (* magic + version + clock varint + length varint + log, pre-sized
       so the writer never reallocates under a large log. *)
    let w = Codec.Writer.create ~size:(String.length log + 24) () in
    String.iter (fun c -> Codec.Writer.u8 w (Char.code c)) replica_magic;
    Codec.Writer.u8 w version;
    Codec.Writer.varint w (G.clock_value replica);
    Codec.Writer.byte_string w log;
    Codec.Writer.contents w

  let decode_replica s =
    let r = Codec.Reader.of_string s in
    String.iter
      (fun c ->
        if Codec.Reader.u8 r <> Char.code c then
          raise (Codec.Decode_error "replica snapshot: bad magic"))
      replica_magic;
    if Codec.Reader.u8 r <> version then
      raise (Codec.Decode_error "replica snapshot: unsupported version");
    let clock = Codec.Reader.varint r in
    let log = decode_log (Codec.Reader.byte_string r) in
    if not (Codec.Reader.at_end r) then
      raise (Codec.Decode_error "replica snapshot: trailing bytes");
    (clock, log)

  let restore_replica replica s =
    let clock, log = decode_replica s in
    G.restore_log replica log;
    G.advance_clock replica clock
end

(* Churn catch-up for Algorithm 1-shaped replicas: the {!Protocol}
   [snapshot]/[absorb] stubs replaced by real implementations over the
   "UCS" replica frame. [absorb] merges by timestamp union rather than
   replacing, so a rejoiner keeps its crash-time log and absorbing is
   idempotent and commutative — Proposition 4 guarantees the merged
   replica converges to the same state as if it had received every
   frame it missed. *)
module Catchup
    (G : Generic.S)
    (C : Update_codec.S with type update = G.update) =
struct
  include G
  module P = Over (G) (C)

  let snapshot replica = Some (P.snapshot_replica replica)

  (* Union of two timestamp-sorted logs; timestamps are unique run-wide
     ((Lamport clock, pid) pairs), so entries with equal timestamps are
     the same update and deduplicate. *)
  let merge_logs a b =
    let rec go a b acc =
      match (a, b) with
      | [], rest | rest, [] -> List.rev_append acc rest
      | ((ta, _, _) as x) :: a', ((tb, _, _) as y) :: b' ->
        let c = Timestamp.compare ta tb in
        if c < 0 then go a' b (x :: acc)
        else if c > 0 then go a b' (y :: acc)
        else go a' b' (x :: acc)
    in
    go a b []

  let absorb replica s =
    match P.decode_replica s with
    | exception Codec.Decode_error _ -> false
    | peer_clock, peer_log ->
      G.restore_log replica (merge_logs (G.local_log replica) peer_log);
      G.advance_clock replica peer_clock;
      true
end

module Make (A : Uqadt.S) (C : Update_codec.S with type update = A.update) =
  Over (Generic.Make (A)) (C)
