(** Durable snapshots of a replica's update log.

    Section VII.C argues the full-log space cost is acceptable because
    the log is an asset — "banks keep track of all the operations made
    on an account for years"; "in database systems, it is usual to
    record all the events in log files". This module makes that
    concrete: a replica's timestamp-sorted log serialises to a
    self-describing binary frame (magic, version, entry count, entries,
    additive checksum) and restores into a fresh replica after a crash,
    which then rejoins with its Lamport clock advanced past everything
    it had acknowledged — so recovery never reuses a timestamp.

    The frame bytes are produced by {!Oplog.encode_list} — the shared
    substrate's single codec path — and are unchanged from the seed
    format, so snapshots written before the oplog refactor still
    restore. {!Over} works over {e any} replica exposing the
    {!LOG_VIEW} log/clock API (the oplog-core {!Generic.Make} and the
    seed list-core {!Generic_ref.Make} alike); {!Make} is the
    {!Generic.Make} instantiation every existing call site uses.

    Framing errors, version mismatches and checksum failures raise
    {!Codec.Decode_error}: a corrupted log must never silently
    mis-linearize. *)

(** The slice of {!Generic.S} persistence needs: the compatibility
    list view of the log plus exact clock access. *)
module type LOG_VIEW = sig
  type t

  type update

  val local_log : t -> (Timestamp.t * int * update) list

  val encode_log :
    t -> encode_update:(Codec.Writer.t -> update -> unit) -> string

  val restore_log : t -> (Timestamp.t * int * update) list -> unit

  val clock_value : t -> int

  val advance_clock : t -> int -> unit
end

module Over (G : LOG_VIEW) (C : Update_codec.S with type update = G.update) : sig
  val encode_log : (Timestamp.t * int * G.update) list -> string

  val decode_log : string -> (Timestamp.t * int * G.update) list
  (** @raise Codec.Decode_error on any malformation. *)

  val snapshot : G.t -> string
  (** Serialise a live replica's log. *)

  val restore : G.t -> string -> unit
  (** Load a snapshot into a (typically fresh) replica. *)

  val snapshot_replica : G.t -> string
  (** Exact protocol state: the log frame of {!snapshot} plus the
      replica's Lamport clock. {!snapshot}/{!restore} only guarantee the
      restored clock dominates every logged timestamp — enough for crash
      recovery, not for replay: queries tick the clock without logging,
      so a log-only restore can hand out lower timestamps than the
      snapshotted replica would have. The model checker's checkpointed
      replay ({!Explore}) needs bit-exact restoration. *)

  val decode_replica : string -> int * (Timestamp.t * int * G.update) list
  (** Parse a {!snapshot_replica} frame into (clock, log) without
      touching any replica — the merge primitive behind
      {!Catchup.absorb}.
      @raise Codec.Decode_error on any malformation. *)

  val restore_replica : G.t -> string -> unit
  (** Load a {!snapshot_replica} frame into a {e fresh} replica, making
      its state (log and clock) exactly equal to the snapshotted one.
      @raise Codec.Decode_error on any malformation. *)
end

(** An Algorithm 1-shaped replica with real churn catch-up: [include]s
    [G] and replaces the {!Protocol.PROTOCOL} [snapshot]/[absorb] stubs
    with implementations over the "UCS" replica frame. [absorb] merges
    logs by timestamp union (local entries survive — a rejoiner keeps
    its crash-time log) and max-merges the Lamport clock, so it is
    idempotent, commutative, and never hands out a stale timestamp
    after catching up. *)
module Catchup
    (G : Generic.S)
    (C : Update_codec.S with type update = G.update) : sig
  include
    Generic.S
      with type t = G.t
       and type state = G.state
       and type update = G.update
       and type query = G.query
       and type output = G.output
       and type message = G.message
end

module Make (A : Uqadt.S) (C : Update_codec.S with type update = A.update) : sig
  val encode_log : (Timestamp.t * int * A.update) list -> string

  val decode_log : string -> (Timestamp.t * int * A.update) list
  (** @raise Codec.Decode_error on any malformation. *)

  val snapshot : Generic.Make(A).t -> string
  (** Serialise a live replica's log. *)

  val restore : Generic.Make(A).t -> string -> unit
  (** Load a snapshot into a (typically fresh) replica. *)

  val snapshot_replica : Generic.Make(A).t -> string
  (** See {!Over.snapshot_replica}. *)

  val restore_replica : Generic.Make(A).t -> string -> unit
  (** See {!Over.restore_replica}.
      @raise Codec.Decode_error on any malformation. *)
end
