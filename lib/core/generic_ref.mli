(** The seed cons-list implementation of Algorithm 1, preserved
    verbatim as the reference core.

    This is the deliberately naive replica the paper's lines 12–19
    describe — a sorted list inserted by O(n) scan, a full O(n) fold
    per query — that {!Generic} was before it moved onto the shared
    {!Oplog} substrate. It is kept for three jobs:

    {ul
    {- the differential test suite runs it against the oplog-core
       {!Generic} on random schedules and demands identical query
       outputs and certificates;}
    {- the C2 experiment and the bechamel benchmarks keep a
       paper-faithful "naive full replay" row to measure the
       optimisations against;}
    {- [ucsim --log-core list] A/Bs the two cores from the CLI.}}

    Its [protocol_name] is ["universal-list"]; behaviourally it is
    observably identical to {!Generic} (same total order, same
    answers), differing only in [replay_steps] and wall-clock cost. *)

module Make (A : Uqadt.S) :
  Generic.S
    with type state = A.state
     and type update = A.update
     and type query = A.query
     and type output = A.output
