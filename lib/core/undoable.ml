module type S = sig
  include Uqadt.S

  type undo

  val apply_with_undo : state -> update -> state * undo

  val undo : state -> undo -> state
end

module Set = struct
  include Set_spec

  (* Whether the element was present before the update ran. *)
  type undo = { element : int; was_present : bool; was_insert : bool }

  let apply_with_undo s u =
    let element = match u with Set_spec.Insert v | Set_spec.Delete v -> v in
    let was_present = Support.Int_set.mem element s in
    let was_insert = match u with Set_spec.Insert _ -> true | Set_spec.Delete _ -> false in
    (apply s u, { element; was_present; was_insert })

  let undo s { element; was_present; was_insert = _ } =
    if was_present then Support.Int_set.add element s
    else Support.Int_set.remove element s
end

module Register = struct
  include Register_spec

  type undo = int  (* the overwritten value *)

  let apply_with_undo s u = (apply s u, s)

  let undo _ previous = previous
end

module Counter = struct
  include Counter_spec

  type undo = int  (* the increment to subtract back *)

  let apply_with_undo s (Counter_spec.Add n as u) = (apply s u, n)

  let undo s n = s - n
end

module Memory = struct
  include Memory_spec

  type undo = { key : int; previous : int option }

  let apply_with_undo s (Memory_spec.Write (x, _) as u) =
    (apply s u, { key = x; previous = Support.Int_map.find_opt x s })

  let undo s { key; previous } =
    match previous with
    | None -> Support.Int_map.remove key s
    | Some v -> Support.Int_map.add key v s
end
