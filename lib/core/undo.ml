module Make (A : Undoable.S) = struct
  include A

  type message = { ts : Timestamp.t; update : A.update }

  (* Undo tokens are state-dependent, so they refresh on every redo. *)
  type pending = { u : A.update; mutable tok : A.undo }

  type t = {
    ctx : message Protocol.ctx;
    clock : Lamport.t;
    log : (pending, A.state) Oplog.t;
    mutable state : A.state;
    mutable repairs : int;
  }

  let protocol_name = "universal-undo"

  let create ctx =
    let t =
      {
        ctx;
        clock = Lamport.create ();
        log = Oplog.create ();
        state = A.initial;
        repairs = 0;
      }
    in
    Option.iter
      (fun (r : Obs.replica) -> Oplog.set_profile t.log (Some r.profile))
      ctx.Protocol.obs;
    t

  (* Insert a timestamped update at its place in the total order: undo
     every later entry, apply, redo them (refreshing their undo
     tokens). The oplog's binary search finds the position; repairs
     touch only the suffix behind it. *)
  let insert t ts origin u =
    let before = t.repairs in
    let len = Oplog.length t.log in
    let pos = Oplog.locate t.log ts in
    let state = ref t.state in
    for i = len - 1 downto pos do
      state := A.undo !state (Oplog.get t.log i).Oplog.payload.tok;
      t.repairs <- t.repairs + 1
    done;
    let state', tok = A.apply_with_undo !state u in
    state := state';
    ignore (Oplog.insert t.log { Oplog.ts; origin; payload = { u; tok } });
    for i = pos + 1 to len do
      let p = (Oplog.get t.log i).Oplog.payload in
      let state', tok = A.apply_with_undo !state p.u in
      p.tok <- tok;
      state := state';
      t.repairs <- t.repairs + 1
    done;
    t.state <- !state;
    Option.iter
      (fun (r : Obs.replica) ->
        r.profile.Obs.Profile.undo_repairs <-
          r.profile.Obs.Profile.undo_repairs + t.repairs - before)
      t.ctx.Protocol.obs;
    (* One application for the newcomer plus every undo/redo repair. *)
    t.ctx.Protocol.count_replay (1 + t.repairs - before)

  let update t u ~on_done =
    let cl = Lamport.tick t.clock in
    let ts = Timestamp.make ~clock:cl ~pid:t.ctx.Protocol.pid in
    insert t ts t.ctx.Protocol.pid u;
    t.ctx.Protocol.broadcast { ts; update = u };
    on_done ()

  let receive t ~src { ts; update = u } =
    Lamport.merge t.clock ts.Timestamp.clock;
    insert t ts src u

  let query t q ~on_result =
    let (_ : int) = Lamport.tick t.clock in
    (* The current state is maintained incrementally: no replay at all. *)
    on_result (A.eval t.state q)

  let receive_batch t ~src msgs = List.iter (receive t ~src) msgs

  let message_wire_size { ts; update = u } =
    Timestamp.wire_size ts + A.update_wire_size u

  let describe_message { ts; update = u } =
    Format.asprintf "%a%a" A.pp_update u Timestamp.pp ts

  let log_length t = Oplog.length t.log

  let metadata_bytes t =
    Oplog.footprint t.log ~payload_wire_size:(fun p -> A.update_wire_size p.u)

  let certificate t =
    Some
      (List.rev
         (Oplog.fold (fun acc e -> (e.Oplog.origin, e.Oplog.payload.u) :: acc) [] t.log))

  let repairs t = t.repairs

  let snapshot _t = None

  let absorb _t _s = false
end
