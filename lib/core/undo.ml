module Make (A : Undoable.S) = struct
  include A

  type message = { ts : Timestamp.t; update : A.update }

  type entry = { ets : Timestamp.t; origin : int; u : A.update; mutable tok : A.undo }

  type t = {
    ctx : message Protocol.ctx;
    clock : Lamport.t;
    (* Newest first: repairs touch the recent end of the log. *)
    mutable rlog : entry list;
    mutable len : int;
    mutable state : A.state;
    mutable repairs : int;
  }

  let protocol_name = "universal-undo"

  let create ctx =
    { ctx; clock = Lamport.create (); rlog = []; len = 0; state = A.initial; repairs = 0 }

  (* Insert a timestamped update at its place in the total order: undo
     every later entry, apply, redo them (refreshing their undo tokens,
     which are state-dependent). *)
  let insert t ts origin u =
    let before = t.repairs in
    let rec unwind acc state = function
      | e :: rest when Timestamp.compare ts e.ets < 0 ->
        t.repairs <- t.repairs + 1;
        unwind (e :: acc) (A.undo state e.tok) rest
      | older ->
        let state, tok = A.apply_with_undo state u in
        let entry = { ets = ts; origin; u; tok } in
        let state, rebuilt =
          List.fold_left
            (fun (state, log) e ->
              let state, tok = A.apply_with_undo state e.u in
              e.tok <- tok;
              t.repairs <- t.repairs + 1;
              (state, e :: log))
            (state, entry :: older)
            acc
        in
        t.state <- state;
        t.rlog <- rebuilt;
        t.len <- t.len + 1
    in
    unwind [] t.state t.rlog;
    (* One application for the newcomer plus every undo/redo repair. *)
    t.ctx.Protocol.count_replay (1 + t.repairs - before)

  let update t u ~on_done =
    let cl = Lamport.tick t.clock in
    let ts = Timestamp.make ~clock:cl ~pid:t.ctx.Protocol.pid in
    insert t ts t.ctx.Protocol.pid u;
    t.ctx.Protocol.broadcast { ts; update = u };
    on_done ()

  let receive t ~src { ts; update = u } =
    Lamport.merge t.clock ts.Timestamp.clock;
    insert t ts src u

  let query t q ~on_result =
    let (_ : int) = Lamport.tick t.clock in
    (* The current state is maintained incrementally: no replay at all. *)
    on_result (A.eval t.state q)

  let message_wire_size { ts; update = u } =
    Timestamp.wire_size ts + A.update_wire_size u

  let describe_message { ts; update = u } =
    Format.asprintf "%a%a" A.pp_update u Timestamp.pp ts

  let log_length t = t.len

  let metadata_bytes t =
    List.fold_left
      (fun acc e ->
        acc + Timestamp.wire_size e.ets + Wire.varint_size e.origin + A.update_wire_size e.u)
      0 t.rlog

  let certificate t =
    Some (List.rev_map (fun e -> (e.origin, e.u)) t.rlog)

  let repairs t = t.repairs
end
