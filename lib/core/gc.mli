(** Algorithm 1 with stability-based log compaction — Section VII.C's
    "after some time old messages can be garbage collected".

    Correctness of pruning rests on a Lamport-clock stability rule: if
    every process has been heard from with a logical clock ≥ c, then any
    future update from any process will carry a timestamp with clock
    > c, hence sort after every log entry with clock ≤ c. That prefix of
    the total order is immutable and can be folded into a snapshot
    state. Since the oplog refactor the live tail is an {!Oplog} whose
    stability watermark {e is} the snapshot clock: {!Oplog.compact}
    folds the stable prefix, and the watermark guard backs the
    invariant check below.

    The rule additionally needs per-channel FIFO delivery (run with
    [fifo = true]): a process's messages carry increasing clocks, so
    under FIFO "heard clock c from j" implies every earlier message of
    [j] has arrived, and nothing in flight can sort below the bound.
    This is the concrete synchrony assumption Section VII.C alludes to
    when it notes old messages can be collected "after some time"; the
    replica raises [Invalid_argument] rather than mis-linearize if the
    assumption is violated.

    Liveness of the bound requires hearing from idle processes, so a
    replica that has received [heartbeat_every] updates without sending
    anything broadcasts a clock-only heartbeat. A crashed process stops
    heartbeating and freezes the bound — the price of wait-freedom, and
    measured in experiment C3.

    The trade-off against {!Generic}: O(1)-bounded log in steady state,
    but the replica can no longer produce a full certificate (the
    compacted prefix is gone) and replays only the live tail. *)

module Make (A : Uqadt.S) : sig
  include
    Protocol.PROTOCOL
      with type state = A.state
       and type update = A.update
       and type query = A.query
       and type output = A.output

  val heartbeat_every : int

  val compacted : t -> int
  (** Log entries folded into the snapshot so far. *)
end
