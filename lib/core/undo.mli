(** The undo-based universal construction (Karsenty & Beaudouin-Lafon
    [22], as discussed in Section VII.C).

    Like Algorithm 1 the replica totally orders updates by (Lamport
    clock, pid), but it maintains the {e current} state incrementally:
    a message that arrives in order is applied directly (O(1)); a late
    message that belongs [k] positions from the end of the log is
    positioned by undoing the [k] later updates, applying the newcomer,
    and replaying the [k] — O(k) instead of the full-log replay of
    {!Generic}. Queries are O(1). Experiment A1 compares the two as the
    late-arrival rate grows.

    The log itself is the shared {!Oplog} substrate (binary-search
    positioning, blit insert); only the undo/redo repair discipline
    lives here, with per-entry undo tokens kept mutable because they
    are state-dependent and refresh on every redo. *)

module Make (A : Undoable.S) : sig
  include
    Protocol.PROTOCOL
      with type state = A.state
       and type update = A.update
       and type query = A.query
       and type output = A.output

  val repairs : t -> int
  (** Number of undo/redo repair steps performed so far. *)
end
