(** The CRDT fast path of Section VII.C: "If all the update operations
    commute in the sequential specification, all linearizations would
    lead to the same state so a naive implementation, that applies the
    updates on a replica as soon as the notification is received,
    achieves update consistency."

    No timestamps, no log, no replay: an update is applied locally,
    broadcast, and applied at each receiver on arrival. Only sound when
    [A.commutative] — the functor refuses other types at replica
    creation, and the negative test (a plain set under this protocol
    diverging) is part of the suite. *)

module Make (A : Uqadt.S) : sig
  include
    Protocol.PROTOCOL
      with type state = A.state
       and type update = A.update
       and type query = A.query
       and type output = A.output

  val unchecked : bool ref
  (** Test hook: set to [true] to skip the commutativity guard and
      observe divergence on non-commutative types. *)
end
