(** The shared operation-log substrate every replica protocol sits on.

    Algorithm 1's replica state is "the set of timestamped updates
    received so far, sorted by timestamp". The seed implementations
    each kept a private copy of that machinery — {!Generic} a sorted
    cons-list with O(n) scan insertion, {!Memo} an array with linear
    insert-position search plus its own checkpoint cache, {!Gc} another
    sorted list plus a stability bound, {!Undo} a reversed list. This
    module is the single substrate they now share:

    {ul
    {- {b Storage}: a growable array of [(timestamp, origin, payload)]
       entries kept sorted by timestamp ascending. Timestamps are
       (Lamport clock, pid) pairs and therefore {e strictly} totally
       ordered — no two entries ever compare equal.}
    {- {b Insertion}: binary-search locate (O(log n)) plus one
       [Array.blit] to open the slot, instead of the seed's O(n)
       cons-scan. Fresh updates land at the end (locate terminates
       immediately); late arrivals land mid-log and shift the suffix.}
    {- {b Checkpoints}: the Section VII.C memoised-replay cache,
       generalising [Memo.snapshot_interval]. {!replay} records the
       folded state every [checkpoint_interval] entries and starts the
       next replay from the deepest checkpoint still valid; an insert
       at position [pos] invalidates exactly the checkpoints strictly
       above [pos].}
    {- {b Stability watermark}: the GC hook. {!compact} folds the
       prefix at or below a clock bound into a caller-held snapshot
       state and remembers the bound; {!insert} refuses timestamps at
       or below the watermark (they would mutate a discarded prefix).}
    {- {b Codec}: the one wire path for persistence. {!encode_list} /
       {!decode_list} produce byte-for-byte the frame the seed
       {!Persist} wrote (magic "UCL", version, varint count, entries,
       additive checksum), so snapshots taken before this refactor
       still restore.}}

    Invariants maintained:
    {ul
    {- entries are strictly increasing by {!Timestamp.compare};}
    {- every checkpoint [(k, s)] satisfies [0 < k <= length] and [s] is
       the fold of the first [k] entries over the [apply] passed to
       {!replay};}
    {- every stored timestamp has [clock > watermark].}} *)

type 'u entry = { ts : Timestamp.t; origin : int; payload : 'u }
(** One log record: the update payload as received, the pid that issued
    it, and the (Lamport clock, pid) timestamp ordering it. *)

type ('u, 's) t
(** A log of ['u] payloads whose checkpoints hold ['s] states. *)

val create : ?checkpoint_interval:int -> ?query_cache:bool -> unit -> ('u, 's) t
(** An empty log. [checkpoint_interval] (default [0] = checkpoints off)
    is how many entries {!replay} folds between recorded states.
    [query_cache] (default [false]) additionally memoises the full fold
    at the end of every {!replay}, so a query issued after a run of
    appends folds only the suffix that arrived since the previous
    query; an insert landing below the cached prefix invalidates it,
    exactly like a checkpoint. Only enable it when every {!replay} on
    this log uses the same [apply]/[initial] (the checkpoint
    assumption).
    @raise Invalid_argument if the interval is negative. *)

val set_profile : ('u, 's) t -> Obs.Profile.t option -> unit
(** Attach (or detach, with [None] — the initial state) a telemetry
    profile. With one attached, {!insert} counts appends vs mid-log
    shifts, {!replay} counts passes/steps and checkpoint hit/miss/take,
    and {!compact} counts folded entries — all plain field bumps, no
    registry lookups on the hot path. *)

val checkpoint_interval : ('u, 's) t -> int

val length : ('u, 's) t -> int

val get : ('u, 's) t -> int -> 'u entry
(** [get t i] is the [i]-th entry in timestamp order.
    @raise Invalid_argument unless [0 <= i < length t]. *)

val locate : ('u, 's) t -> Timestamp.t -> int
(** The position at which an entry with this timestamp belongs: the
    index of the first entry whose timestamp is greater. O(log n)
    binary search. Timestamps are unique, so this is unambiguous. *)

val insert : ('u, 's) t -> 'u entry -> int
(** Insert in timestamp order and return the position the entry landed
    at; checkpoints above that position are invalidated. Idempotent on
    a duplicate timestamp: timestamps are unique run-wide, so an equal
    timestamp is the same update delivered again (churn catch-up makes
    delivery at-least-once) and the log is left unchanged.
    @raise Invalid_argument if the timestamp's clock is at or below the
    stability {!watermark}. *)

val insert_batch : ('u, 's) t -> 'u entry list -> int
(** Insert a whole envelope of entries and return how many were fresh.
    Semantically identical to folding {!insert} over the list in order
    — duplicate timestamps (within the batch or against the log) are
    skipped, checkpoints above the lowest fresh landing position are
    invalidated — but costs one stable sort of the batch plus a single
    back-to-front merge pass over the backing array (every resident
    entry moves at most once), instead of k binary searches each
    paying a suffix memmove.
    @raise Invalid_argument if any timestamp's clock is at or below
    the stability {!watermark}; the log is then left unchanged (the
    batch is validated before the merge). *)

val iter : ('u entry -> unit) -> ('u, 's) t -> unit

val fold : ('a -> 'u entry -> 'a) -> 'a -> ('u, 's) t -> 'a

val to_list : ('u, 's) t -> (Timestamp.t * int * 'u) list
(** The log in timestamp order, in the triple shape the seed
    [local_log] API exposed — the compatibility view {!Persist} and the
    experiments consume. *)

val load : ('u, 's) t -> (Timestamp.t * int * 'u) list -> unit
(** Replace the contents with the given entries (sorted here, so any
    order is accepted), dropping all checkpoints and resetting the
    watermark. Crash-recovery path: the checkpoint interval is kept. *)

val replay :
  ('u, 's) t -> apply:('s -> 'u -> 's) -> initial:'s -> 's * int
(** Fold the log left-to-right, starting from the deepest valid
    checkpoint (or [initial] if none), recording a new checkpoint every
    [checkpoint_interval] entries on the way. Returns the final state
    and the number of [apply] steps actually performed — the
    [replay_steps] observable of experiment C2. With checkpoints off
    this is a plain full fold. *)

val checkpoints_live : ('u, 's) t -> int
(** Currently valid checkpoints (diagnostics). *)

val watermark : ('u, 's) t -> int
(** The stability bound: every entry with clock at or below this has
    been folded out by {!compact} (initially [0]). *)

val compact : ('u, 's) t -> upto_clock:int -> apply:('s -> 'u -> 's) -> 's -> 's * int
(** [compact t ~upto_clock ~apply snapshot] folds every entry whose
    clock is at or below [upto_clock] into [snapshot], removes them
    from the log, advances the watermark to [upto_clock] (even when no
    entry qualified), drops all checkpoints (their bases shifted), and
    returns the new snapshot state with the number of entries folded.
    No-op returning [(snapshot, 0)] if [upto_clock] is at or below the
    current watermark. *)

val footprint : ('u, 's) t -> payload_wire_size:('u -> int) -> int
(** Wire bytes the retained entries would occupy: per entry the
    timestamp, a varint origin, and the payload — the [metadata_bytes]
    accounting every protocol previously duplicated. *)

(** {2 Codec}

    The persistence wire format, unchanged from the seed {!Persist}:
    magic "UCL", a version byte, a varint entry count, per entry the
    clock/pid/origin varints then the codec-encoded update, and a
    trailing varint additive checksum of everything before it. The
    frame is self-delimiting, so it can be embedded in larger frames. *)

val encode_list :
  encode_update:(Codec.Writer.t -> 'u -> unit) ->
  (Timestamp.t * int * 'u) list ->
  string

val decode_list :
  decode_update:(Codec.Reader.t -> 'u) -> string -> (Timestamp.t * int * 'u) list
(** @raise Codec.Decode_error on bad magic, unsupported version,
    truncation, trailing bytes, or checksum mismatch. *)

val encode :
  ?update_wire_size:('u -> int) ->
  encode_update:(Codec.Writer.t -> 'u -> unit) ->
  ('u, 's) t ->
  string
(** Byte-for-byte the frame [encode_list (to_list t)] produces, but
    encoded straight from the backing array — no intermediate list —
    with the writer pre-sized to the exact frame length when
    [update_wire_size] is given (the {!Wire} accounting the specs
    already expose). The persistence hot path. *)

val decode :
  decode_update:(Codec.Reader.t -> 'u) -> ('u, 's) t -> string -> unit
(** {!load} the decoded entries into an existing log.
    @raise Codec.Decode_error as {!decode_list}. *)
