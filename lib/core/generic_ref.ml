module Make (A : Uqadt.S) = struct
  include A

  type message = { ts : Timestamp.t; update : A.update }

  type t = {
    ctx : message Protocol.ctx;
    clock : Lamport.t;
    (* Sorted by timestamp, ascending. Entries: (timestamp, origin, update). *)
    mutable log : (Timestamp.t * int * A.update) list;
    mutable log_len : int;
  }

  let protocol_name = "universal-list"

  let create ctx = { ctx; clock = Lamport.create (); log = []; log_len = 0 }

  (* Timestamp-sorted insert. Late messages land in the middle; fresh
     ones at the end, so we keep the list ascending and insert by scan.
     A duplicate timestamp is the same update seen again (snapshot
     catch-up racing an in-flight frame makes delivery at-least-once
     under churn) and is dropped. *)
  let insert t entry =
    let ts, _, _ = entry in
    let fresh = ref true in
    let rec place = function
      | [] -> [ entry ]
      | ((ts', _, _) as e) :: rest ->
        let c = Timestamp.compare ts ts' in
        if c = 0 then begin
          fresh := false;
          e :: rest
        end
        else if c < 0 then entry :: e :: rest
        else e :: place rest
    in
    t.log <- place t.log;
    if !fresh then t.log_len <- t.log_len + 1

  let update t u ~on_done =
    let cl = Lamport.tick t.clock in
    let ts = Timestamp.make ~clock:cl ~pid:t.ctx.Protocol.pid in
    (* Line 6: broadcast to all; the local copy is applied synchronously. *)
    insert t (ts, t.ctx.Protocol.pid, u);
    t.ctx.Protocol.broadcast { ts; update = u };
    on_done ()

  let receive t ~src { ts; update = u } =
    (* Line 9: clock_i <- max(clock_i, cl). *)
    Lamport.merge t.clock ts.Timestamp.clock;
    insert t (ts, src, u)

  let query t q ~on_result =
    (* Line 13: queries also advance the clock. *)
    let (_ : int) = Lamport.tick t.clock in
    (* Lines 14-17: replay the whole sorted log from the initial state. *)
    let state =
      List.fold_left (fun s (_, _, u) -> A.apply s u) A.initial t.log
    in
    t.ctx.Protocol.count_replay t.log_len;
    on_result (A.eval state q)

  let receive_batch t ~src msgs = List.iter (receive t ~src) msgs

  let message_wire_size { ts; update = u } =
    Timestamp.wire_size ts + A.update_wire_size u

  let describe_message { ts; update = u } =
    Format.asprintf "%a%a" A.pp_update u Timestamp.pp ts

  let log_length t = t.log_len

  let metadata_bytes t =
    List.fold_left
      (fun acc (ts, origin, u) ->
        acc + Timestamp.wire_size ts + Wire.varint_size origin + A.update_wire_size u)
      0 t.log

  let certificate t = Some (List.map (fun (_, origin, u) -> (origin, u)) t.log)

  let snapshot _t = None

  let absorb _t _s = false

  let message_update { update = u; _ } = u

  let local_log t = t.log

  (* The list core has no backing array to stream from; the list path
     is the reference the fast [Oplog.encode] is pinned against. *)
  let encode_log t ~encode_update = Oplog.encode_list ~encode_update t.log

  let clock_value t = Lamport.value t.clock

  let advance_clock t v = Lamport.merge t.clock v

  let restore_log t entries =
    t.log <- List.sort (fun (a, _, _) (b, _, _) -> Timestamp.compare a b) entries;
    t.log_len <- List.length entries;
    List.iter (fun (ts, _, _) -> Lamport.merge t.clock ts.Timestamp.clock) entries
end
