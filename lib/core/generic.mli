(** Algorithm 1: the generic strong-update-consistent universal
    construction, on the shared {!Oplog} substrate.

    Every update is timestamped with (Lamport clock, pid) — a total
    order that contains the happened-before relation — and reliably
    broadcast; each replica keeps the set of timestamped updates it has
    received, sorted; a query replays the sorted log from the initial
    state and evaluates on the result (lines 12–19 of the paper).
    Wait-free: both operations complete locally, whatever the network
    does. Proposition 4: all histories this produces are SUC.

    Since the oplog refactor this replica is no longer naive: insertion
    is a binary-search locate plus blit, and queries replay from
    {!Oplog} interval checkpoints (Section VII.C's "effective
    implementation"), on by default every [!checkpoint_interval]
    entries. The seed cons-list implementation survives as
    {!Generic_ref} for differential testing and as the paper-faithful
    naive baseline; {!Memo} remains the fixed-interval variant the
    C2/A1 experiment narrative is written against. *)

(** What every Algorithm 1-shaped replica exposes beyond
    {!Protocol.PROTOCOL}: the log/clock view {!Persist} serialises and
    the model checker's snapshot layer restores. Implemented by both
    the oplog core ({!Make}) and the seed list core
    ({!Generic_ref.Make}), so persistence, snapshotting and the
    differential tests are written once against this signature. *)
module type S = sig
  include Protocol.PROTOCOL

  val message_update : message -> update
  (** The update payload a broadcast message carries, without its
      timestamp — for observers (like the model checker's
      commutativity-aware state keys) to which timestamps are
      unobservable. *)

  val local_log : t -> (Timestamp.t * int * update) list
  (** The replica's timestamp-sorted update log (timestamp, origin pid,
      update) — exposed for the experiments, the model checker and
      {!Persist}. *)

  val encode_log :
    t -> encode_update:(Codec.Writer.t -> update -> unit) -> string
  (** The log serialised in the {!Oplog} "UCL" frame — byte-for-byte
      [Oplog.encode_list (local_log t)], but cores backed by the array
      substrate encode straight off the backing array into an
      exactly pre-sized buffer ({!Oplog.encode}), skipping the
      {!local_log} list materialisation. The {!Persist} snapshot hot
      path. *)

  val restore_log : t -> (Timestamp.t * int * update) list -> unit
  (** Crash recovery: replace the replica's log with a decoded snapshot
      (see {!Persist}) and advance its Lamport clock past every restored
      timestamp, so operations issued after recovery still sort after
      everything the replica had acknowledged before the crash. *)

  val clock_value : t -> int
  (** The replica's current Lamport clock. Together with {!local_log}
      this is the replica's complete protocol state — the log alone is
      not enough for exact state reconstruction, because queries tick
      the clock without leaving a log entry. *)

  val advance_clock : t -> int -> unit
  (** Merge an externally recorded clock value (max semantics). Used by
      {!Persist} to make a restored replica's clock {e exactly} match
      the snapshotted one when restoring into a fresh replica. *)
end

module Make (A : Uqadt.S) : sig
  include
    S
      with type state = A.state
       and type update = A.update
       and type query = A.query
       and type output = A.output

  val checkpoint_interval : int ref
  (** Entries between replay checkpoints for replicas created {e after}
      the assignment; [0] disables checkpointing (pure full replay over
      the array core). Default [32]. Per functor instantiation — the
      [ucsim --checkpoint-interval] flag sets it before building
      replicas. *)

  val checkpoints_live : t -> int
  (** Currently valid {!Oplog} checkpoints (diagnostics). *)
end
