(** Algorithm 1: the generic strong-update-consistent universal
    construction.

    Every update is timestamped with (Lamport clock, pid) — a total
    order that contains the happened-before relation — and reliably
    broadcast; each replica keeps the set of timestamped updates it has
    received, sorted; a query replays the whole sorted log from the
    initial state and evaluates on the result (lines 12–19 of the
    paper). Wait-free: both operations complete locally, whatever the
    network does. Proposition 4: all histories this produces are SUC.

    This is the {e reference} implementation — deliberately naive, one
    replay per query — against which {!Memo}, {!Gc} and {!Undo} are the
    paper's Section VII.C optimisations. *)

module Make (A : Uqadt.S) : sig
  include
    Protocol.PROTOCOL
      with type state = A.state
       and type update = A.update
       and type query = A.query
       and type output = A.output

  val message_update : message -> A.update
  (** The update payload a broadcast message carries, without its
      timestamp — for observers (like the model checker's
      commutativity-aware state keys) to which timestamps are
      unobservable. *)

  val local_log : t -> (Timestamp.t * int * A.update) list
  (** The replica's timestamp-sorted update log (timestamp, origin pid,
      update) — exposed for the experiments, the model checker and
      {!Persist}. *)

  val restore_log : t -> (Timestamp.t * int * A.update) list -> unit
  (** Crash recovery: replace the replica's log with a decoded snapshot
      (see {!Persist}) and advance its Lamport clock past every restored
      timestamp, so operations issued after recovery still sort after
      everything the replica had acknowledged before the crash. *)

  val clock_value : t -> int
  (** The replica's current Lamport clock. Together with {!local_log}
      this is the replica's complete protocol state — the log alone is
      not enough for exact state reconstruction, because queries tick
      the clock without leaving a log entry. *)

  val advance_clock : t -> int -> unit
  (** Merge an externally recorded clock value (max semantics). Used by
      {!Persist} to make a restored replica's clock {e exactly} match
      the snapshotted one when restoring into a fresh replica. *)
end
