(** Algorithm 1 with cached intermediate states — the "effective
    implementation" sketched in Section VII.C: "a process can keep
    intermediate states. These intermediate states are re-computed only
    if very late messages arrive."

    Since the oplog refactor the checkpoint machinery lives in
    {!Oplog}; this module is the fixed-interval instantiation of it
    (every [snapshot_interval] entries), kept as a named protocol so
    the C2/A1 experiment narrative and its tables keep their
    "universal-memo" row. A query replays only from the last checkpoint
    below the log's end (O(interval) amortised instead of O(log
    length)); a late arrival that lands at position [k] invalidates
    just the checkpoints above [k]. Observable difference from the
    naive {!Generic_ref}: none in answers (same total order), only in
    [replay_steps] — which is exactly experiment C2/A1. *)

module Make (A : Uqadt.S) : sig
  include
    Protocol.PROTOCOL
      with type state = A.state
       and type update = A.update
       and type query = A.query
       and type output = A.output

  val snapshot_interval : int

  val snapshots_live : t -> int
  (** Currently valid snapshots (diagnostics). *)
end
