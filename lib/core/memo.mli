(** Algorithm 1 with cached intermediate states — the "effective
    implementation" sketched in Section VII.C: "a process can keep
    intermediate states. These intermediate states are re-computed only
    if very late messages arrive."

    The log is an array kept in timestamp order with periodic snapshot
    states every [snapshot_interval] entries. A query replays only from
    the last snapshot below the log's end (O(interval) amortised instead
    of O(log length)); a late arrival that lands at position [k]
    invalidates just the snapshots above [k]. Observable difference from
    {!Generic}: none in answers (same total order), only in
    [replay_steps] — which is exactly experiment C2/A1. *)

module Make (A : Uqadt.S) : sig
  include
    Protocol.PROTOCOL
      with type state = A.state
       and type update = A.update
       and type query = A.query
       and type output = A.output

  val snapshot_interval : int

  val snapshots_live : t -> int
  (** Currently valid snapshots (diagnostics). *)
end
