module Make (A : Uqadt.S) = struct
  include A

  type message = A.update

  type t = { ctx : message Protocol.ctx; mutable state : A.state; mutable applied : int }

  let protocol_name = "crdt-fastpath"

  let unchecked = ref false

  let create ctx =
    if (not A.commutative) && not !unchecked then
      invalid_arg
        (Printf.sprintf
           "Commutative.Make: %s is not a commutative type; apply-on-receive would \
            not converge (use the universal construction)"
           A.name);
    { ctx; state = A.initial; applied = 0 }

  let update t u ~on_done =
    t.state <- A.apply t.state u;
    t.applied <- t.applied + 1;
    t.ctx.Protocol.broadcast u;
    on_done ()

  let receive t ~src:_ u =
    t.state <- A.apply t.state u;
    t.applied <- t.applied + 1

  let query t q ~on_result = on_result (A.eval t.state q)

  let receive_batch t ~src msgs = List.iter (receive t ~src) msgs

  let message_wire_size = A.update_wire_size

  let describe_message u = Format.asprintf "%a" A.pp_update u

  let log_length _t = 0

  let metadata_bytes _t = 0

  let certificate _t = None

  let snapshot _t = None

  let absorb _t _s = false
end
