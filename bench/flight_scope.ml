(* Flight-recorder overhead scenario (EXPERIMENTS C11).

   Runs the same fixed workload through the multicore engine in three
   telemetry configurations:

     off       — obs = None, recorder = None (the seed hot path)
     metrics   — per-domain registry shards attached (obs = Some)
     recorder  — full flight recorder + sharded metrics + the online
                 UC/EC monitors over the merged stream

   and reports aggregate ops/sec per cell so the cost of each layer is
   visible as a ratio against `off`. Every cell is still a full
   [Throughput] differential run, and the recorder cells additionally
   carry differential clause 6: the recorded journal must re-execute on
   the sequential core to the identical history fingerprint.

   The verdict of this scope is correctness, not speed: overhead
   ratios are hardware- and scheduler-dependent (a single-core
   container serialises the domains and flatters the recorder), so the
   exit code reflects only the differential — including the replay
   clause and the monitors staying clean. The table is written to
   BENCH_flight.json; `--smoke` shrinks domains and ops (CI budget). *)

module T_counter = Throughput.Bench (Counter_spec)
module T_set = Throughput.Bench (Set_spec)

type config = Off | Metrics | Recorder

let config_name = function
  | Off -> "off"
  | Metrics -> "metrics"
  | Recorder -> "recorder"

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let domains = if smoke then 2 else 4 in
  let ops = if smoke then 1_000 else 10_000 in
  let seed = 42 in
  let failures = ref [] in
  let monitors_dirty = ref [] in
  let cell spec config v ~ops_per_domain ~row_of ~ok ~journal_replay ~monitor_clean =
    let name = Printf.sprintf "%s/%s" spec (config_name config) in
    if not (ok v) then failures := name :: !failures;
    (match journal_replay v with
    | Some false -> failures := (name ^ "(replay)") :: !failures
    | Some true | None -> ());
    (match monitor_clean v with
    | Some false -> monitors_dirty := name :: !monitors_dirty
    | Some true | None -> ());
    let r = row_of ~ops_per_domain v in
    { r with Throughput.spec = name }
  in
  let counter_cell config =
    let scripts =
      T_counter.uniform_scripts ~seed ~domains ~ops ~query_ratio:0.0
    in
    let obs = match config with Off -> None | _ -> Some (Obs.create ()) in
    let recorder =
      match config with
      | Recorder -> Some (Obs.Recorder.create ~domains ())
      | _ -> None
    in
    let monitor =
      match config with
      | Recorder -> Some [ Obs.Monitor.Uc; Obs.Monitor.Ec ]
      | _ -> None
    in
    cell "counter" config
      (T_counter.measure ?obs ?recorder ?monitor ~domains
         ~final_read:Counter_spec.Value ~scripts ())
      ~ops_per_domain:ops
      ~row_of:(fun ~ops_per_domain v -> T_counter.row ~ops_per_domain v)
      ~ok:T_counter.ok
      ~journal_replay:(fun v -> v.T_counter.journal_replay)
      ~monitor_clean:(fun v ->
        Option.bind v.T_counter.recording (fun r ->
            Option.map T_counter.Mon.clean r.T_counter.monitor))
  in
  let set_cell config =
    let scripts =
      Throughput.set_zipf_scripts ~seed ~domains ~ops:(ops / 2) ~skew:1.0
        ~delete_ratio:0.3
    in
    let obs = match config with Off -> None | _ -> Some (Obs.create ()) in
    let recorder =
      match config with
      | Recorder -> Some (Obs.Recorder.create ~domains ())
      | _ -> None
    in
    let monitor =
      match config with
      | Recorder -> Some [ Obs.Monitor.Uc; Obs.Monitor.Ec ]
      | _ -> None
    in
    cell "set" config
      (T_set.measure ?obs ?recorder ?monitor ~domains ~final_read:Set_spec.Read
         ~scripts ())
      ~ops_per_domain:(ops / 2)
      ~row_of:(fun ~ops_per_domain v -> T_set.row ~ops_per_domain v)
      ~ok:T_set.ok
      ~journal_replay:(fun v -> v.T_set.journal_replay)
      ~monitor_clean:(fun v ->
        Option.bind v.T_set.recording (fun r ->
            Option.map T_set.Mon.clean r.T_set.monitor))
  in
  let configs = [ Off; Metrics; Recorder ] in
  let rows =
    List.map counter_cell configs @ List.map set_cell configs
  in
  Printf.printf "%-18s %8s %10s %14s %10s %9s %6s\n" "spec/config" "domains"
    "ops" "ops/sec" "p99 us" "overhead" "ok";
  let baseline spec =
    List.find_opt
      (fun (r : Throughput.row) -> r.Throughput.spec = spec ^ "/off")
      rows
  in
  List.iter
    (fun (r : Throughput.row) ->
      let base =
        baseline (List.hd (String.split_on_char '/' r.Throughput.spec))
      in
      let overhead =
        match base with
        | Some b when b.Throughput.ops_per_sec > 0.0 ->
          Printf.sprintf "%+.1f%%"
            (100.0
            *. ((b.Throughput.ops_per_sec /. r.Throughput.ops_per_sec) -. 1.0))
        | _ -> "-"
      in
      Printf.printf "%-18s %8d %10d %14.0f %10.2f %9s %6b\n" r.Throughput.spec
        r.Throughput.domains r.Throughput.total_ops r.Throughput.ops_per_sec
        r.Throughput.p99_us overhead r.Throughput.ok)
    rows;
  Throughput.emit_json "BENCH_flight.json" rows;
  print_endline "wrote BENCH_flight.json";
  (match !monitors_dirty with
  | [] -> ()
  | specs ->
    Printf.printf "FAIL: online monitors flagged a violation in: %s\n"
      (String.concat ", " (List.rev specs)));
  match (!failures, !monitors_dirty) with
  | [], [] ->
    print_endline
      "differential: every cell converged and every recording replayed (PASS)"
  | specs, _ ->
    if specs <> [] then
      Printf.printf "FAIL: differential mismatch in: %s\n"
        (String.concat ", " (List.rev specs));
    exit 1
