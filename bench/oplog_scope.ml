(* Op-log substrate scaling scenario.

   Sweeps the replica log length over 2^6 .. 2^14 for three cores of the
   universal construction on the set object:

     list        the seed's cons-list core (O(n) ordered insert, full
                 replay per query)
     array       the array-backed oplog, checkpoints disabled (O(log n)
                 locate + blit insert, full replay per query)
     array+ckpt  the oplog with interval checkpoints every 32 entries
                 (warm queries replay at most one interval)

   For each (core, size) cell it measures the amortised insert cost
   (building the whole log, divided by its length) and the steady-state
   query cost, checks that all three cores answer the final read
   identically, and writes the table to BENCH_oplog.json.

   At size 512 the sweep enforces the refactor's acceptance criterion:
   the checkpointed oplog core must answer queries at least 5x faster
   than the seed list core. `--smoke` restricts the sweep to the sizes
   up to 1024 (CI budget); the criterion is checked either way.

   `--obs` attaches a telemetry bundle — each core gets a replica
   profile (pid 0/1/2) whose oplog counters are dumped at the end. The
   measurements and the PASS/FAIL verdict are computed exactly as
   without it. *)

let obs =
  if Array.exists (( = ) "--obs") Sys.argv then Some (Obs.create ()) else None

let dummy_ctx ~pid ~n : _ Protocol.ctx =
  {
    Protocol.pid;
    n;
    now = (fun () -> 0.0);
    send = (fun ~dst:_ _ -> ());
    broadcast = (fun _ -> ());
    broadcast_batch = (fun _ -> ());
    set_timer = (fun ~delay:_ _ -> ());
    count_replay = (fun _ -> ());
    obs = Option.map (fun o -> Obs.replica o pid) obs;
  }

module L = Generic_ref.Make (Set_spec)

(* Two runtime instances of the array-core functor so each keeps its own
   [checkpoint_interval] cell. *)
module A0 = Generic.Make (Set_spec)
module A32 = Generic.Make (Set_spec)

let () = A0.checkpoint_interval := 0
let () = A32.checkpoint_interval := 32

type cell = {
  core : string;
  size : int;
  insert_ns : float;  (* amortised, per inserted update *)
  query_ns : float;  (* steady state, per query *)
  output : Set_spec.output;
}

let measure (type t)
    (module P : Generic.S
      with type update = Set_spec.update
       and type query = Set_spec.query
       and type output = Set_spec.output
       and type t = t) ~core ~pid ~size =
  let rng = Prng.create 99 in
  let r = P.create (dummy_ctx ~pid ~n:3) in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to size do
    P.update r (Set_spec.random_update rng) ~on_done:ignore
  done;
  let build = Unix.gettimeofday () -. t0 in
  (* One untimed query warms the checkpoint cache where there is one;
     the timed loop then sees the steady state every replica reaches
     after its first read. *)
  let out = ref Set_spec.initial in
  P.query r Set_spec.Read ~on_result:(fun o -> out := o);
  let reps = max 100 (1_000_000 / size) in
  let t1 = Unix.gettimeofday () in
  for _ = 1 to reps do
    P.query r Set_spec.Read ~on_result:(fun o ->
        ignore (Sys.opaque_identity o))
  done;
  let queries = Unix.gettimeofday () -. t1 in
  {
    core;
    size;
    insert_ns = build *. 1e9 /. float_of_int size;
    query_ns = queries *. 1e9 /. float_of_int reps;
    output = !out;
  }

let sweep sizes =
  List.concat_map
    (fun size ->
      let cells =
        [
          measure (module L) ~core:"list" ~pid:0 ~size;
          measure (module A0) ~core:"array" ~pid:1 ~size;
          measure (module A32) ~core:"array+ckpt" ~pid:2 ~size;
        ]
      in
      (match cells with
      | ref_cell :: rest ->
        List.iter
          (fun c ->
            if not (Set_spec.equal_output c.output ref_cell.output) then begin
              Printf.printf "FAIL: %s and %s disagree at size %d\n" ref_cell.core
                c.core size;
              exit 1
            end)
          rest
      | [] -> ());
      cells)
    sizes

let emit_json path cells =
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i c ->
      Printf.fprintf oc
        "  {\"core\": %S, \"size\": %d, \"insert_ns_per_op\": %.1f, \
         \"query_ns_per_op\": %.1f}%s\n"
        c.core c.size c.insert_ns c.query_ns
        (if i = List.length cells - 1 then "" else ","))
    cells;
  output_string oc "]\n";
  close_out oc

(* `--monitor` row: per-event cost of the online uc/ec/pc checkers on a
   fixed PC-consistent schedule (round-robin updates, a read every 8th
   op per process, one ω read each at the end — answered from the
   fed-order state so every monitor stays busy to the last event
   instead of stopping at an early violation). Reported alongside the
   sweep; the verdict line is computed exactly as without it. *)
let monitor_bench () =
  let module M = Obs.Monitor.Make (Set_spec) in
  let n = 3 and per = 32 in
  let rng = Prng.create 7 in
  let state = ref Set_spec.initial in
  let feed = ref [] in
  for i = 0 to per - 1 do
    for p = 0 to n - 1 do
      let u = Set_spec.random_update rng in
      state := Set_spec.apply !state u;
      feed := `U (p, u) :: !feed;
      if i mod 8 = 7 then
        feed := `Q (p, Set_spec.Read, Set_spec.eval !state Set_spec.Read) :: !feed
    done
  done;
  for p = 0 to n - 1 do
    feed := `Qw (p, Set_spec.Read, Set_spec.eval !state Set_spec.Read) :: !feed
  done;
  let feed = List.rev !feed in
  let events = List.length feed in
  let run () =
    let m = M.create ~n ~criteria:[ Obs.Monitor.Uc; Obs.Monitor.Ec; Obs.Monitor.Pc ] in
    List.iteri
      (fun i ev ->
        match ev with
        | `U (pid, u) -> M.on_update m ~pid ~index:i ~span:None u
        | `Q (pid, q, o) -> M.on_query m ~pid ~index:i ~span:None ~omega:false q o
        | `Qw (pid, q, o) -> M.on_query m ~pid ~index:i ~span:None ~omega:true q o)
      feed;
    m
  in
  let warm = run () in
  if not (M.clean warm) then begin
    print_endline "FAIL: monitor flagged the PC-consistent bench schedule";
    exit 1
  end;
  let reps = 20 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (run ()))
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf "%-12s %8d %16s %16.1f   (uc,ec,pc online; work %d steps)\n"
    "monitor" events "-"
    (elapsed *. 1e9 /. float_of_int (reps * events))
    (M.work warm)

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let sizes =
    List.filter
      (fun s -> (not smoke) || s <= 1024)
      [ 64; 128; 256; 512; 1024; 2048; 4096; 8192; 16384 ]
  in
  let cells = sweep sizes in
  Printf.printf "%-12s %8s %16s %16s\n" "core" "size" "insert ns/op" "query ns/op";
  List.iter
    (fun c ->
      Printf.printf "%-12s %8d %16.1f %16.1f\n" c.core c.size c.insert_ns
        c.query_ns)
    cells;
  if Array.exists (( = ) "--monitor") Sys.argv then monitor_bench ();
  emit_json "BENCH_oplog.json" cells;
  print_endline "wrote BENCH_oplog.json";
  (* pid 0 = list core, 1 = array, 2 = array+ckpt; verdict unaffected *)
  Option.iter
    (fun o ->
      Obs.finalize o ~live:[];
      Format.printf "telemetry:@.%a@." Obs.Registry.pp o.Obs.registry)
    obs;
  let query_at core size =
    match List.find_opt (fun c -> c.core = core && c.size = size) cells with
    | Some c -> c.query_ns
    | None ->
      Printf.printf "FAIL: missing %s measurement at size %d\n" core size;
      exit 1
  in
  let speedup = query_at "list" 512 /. query_at "array+ckpt" 512 in
  Printf.printf "query speedup at 512   %.1fx vs the seed list core%s\n" speedup
    (if speedup >= 5.0 then " (>= 5x: PASS)" else " (< 5x: FAIL)");
  if speedup < 5.0 then exit 1
