(* Sharded object space scaling scenario (experiment C9).

   Sweeps the shard count over {1, 2, 4, 8} crossed with Zipf skew
   {0.5, 1.1} running the set space on the multicore engine: multi-key
   update batches (fanout up to 3) over a 1024-key domain, routed
   through a static consistent-hash ring, one Algorithm 1 core per
   shard. Every cell is a full shard-aware Proposition 4 differential
   ([Throughput.Sharded]): per-shard logs pairwise equal across
   replicas, ω sweeps equal to the keyed timestamp fold, the UCX
   snapshot/absorb restore agreeing, and keyed sub-updates conserved.

   As with the throughput scope, the verdict is correctness, not
   speed: ops/sec is hardware-dependent, while the per-shard log
   spread makes the skew visible (high skew piles entries onto the
   shard owning key 0). The table is written to BENCH_shard.json;
   `--smoke` restricts the sweep to shards in {1, 8} at one skew (CI
   budget). *)

module B = Throughput.Sharded (Set_spec) (Update_codec.For_set)

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let shard_counts =
    if smoke then [ 1; 8 ] else [ 1; 2; 4; 8 ]
  in
  let skews = if smoke then [ 1.1 ] else [ 0.5; 1.1 ] in
  let domains = if smoke then 2 else 4 in
  let ops = if smoke then 1_000 else 5_000 in
  let keys = 1024 in
  let fanout = 3 in
  let seed = 42 in
  let failures = ref [] in
  let rows =
    List.concat_map
      (fun shards ->
        List.map
          (fun skew ->
            let scripts =
              B.zipf_scripts ~seed ~domains ~ops ~keys ~skew ~fanout
                ~query_ratio:0.1
            in
            let v = B.measure ~shards ~domains ~scripts () in
            let r = B.row ~keys ~skew ~fanout v in
            if not r.Throughput.shard_ok then
              failures := Printf.sprintf "shards=%d skew=%g" shards skew
                          :: !failures;
            r)
          skews)
      shard_counts
  in
  Printf.printf "%-8s %6s %8s %6s %12s %14s %10s %10s %6s\n" "spec" "shards"
    "skew" "keys" "keyed-ops" "ops/sec" "log min" "log max" "ok";
  List.iter
    (fun (r : Throughput.shard_row) ->
      Printf.printf "%-8s %6d %8.2f %6d %12d %14.0f %10d %10d %6b\n"
        r.Throughput.shard_spec r.Throughput.shards r.Throughput.skew
        r.Throughput.keys r.Throughput.keyed_updates
        r.Throughput.shard_ops_per_sec r.Throughput.shard_log_min
        r.Throughput.shard_log_max r.Throughput.shard_ok)
    rows;
  Throughput.emit_shard_json "BENCH_shard.json" rows;
  print_endline "wrote BENCH_shard.json";
  match !failures with
  | [] ->
    print_endline
      "differential: every cell converged per shard to the keyed fold (PASS)"
  | cells ->
    Printf.printf "FAIL: shard-aware differential mismatch in: %s\n"
      (String.concat ", " (List.rev cells));
    exit 1
