(* Exploration-engine scaling scenario.

   Two measurements on Algorithm 1 over the counter:

   1. Calibration (2 replicas x 3 increments): both the seed-equivalent
      naive DFS and the reduced engine finish, so the distinct-failure
      counts can be compared for equality and the protocol-step replay
      ratio measured honestly.

   2. Scale (3 replicas x 3 increments, 27-event schedules): the naive
      DFS cannot finish this scope — it is capped at an execution
      budget and reports how much replay work it burned getting nowhere
      — while the reduced engine (commutativity-aware fingerprinting +
      checkpointed replay) completes it exhaustively.  Sleep sets are
      off at this scope on purpose: the covering rule only lets a
      visited fingerprint subsume a revisit when its recorded sleep set
      is a subset of the current one, so combining sleep sets with a
      timestamp-blind dedup that already collapses the graph fragments
      the visited table and costs more replays than it saves.

   `--smoke` runs only the calibration scope (CI budget). *)

module P = Generic.Make (Counter_spec)
module M = Model_check.Make (P)
module Snap = Snapshot.For_generic (Counter_spec) (Update_codec.For_counter)

let scripts n ops : (Counter_spec.update, Counter_spec.query) Protocol.invocation list array =
  Array.init n (fun pid ->
      List.init ops (fun i ->
          Protocol.Invoke_update (Counter_spec.Add ((pid * ops) + i + 1))))

let reduced ?(domains = 1) ?(por = true) ~n ~ops () =
  M.explore ~limit:max_int ~por ~dedup:true ~checkpoint_every:4
    ~snapshot:Snap.snapshotter ~state_key:Snap.commutative_key
    ~message_key:Snap.commutative_message_key
    ~deliveries_commute:Snap.deliveries_commute ~domains ~scripts:(scripts n ops)
    ~final_read:Counter_spec.Value ()

let naive ~limit ~n ~ops () =
  M.explore ~limit ~scripts:(scripts n ops) ~final_read:Counter_spec.Value ()

let describe label (r : M.report) elapsed =
  let s = r.M.stats in
  Printf.printf
    "%-22s %s after %.2fs\n\
    \  executions checked   %d\n\
    \  protocol steps       %d\n\
    \  states explored      %d (pruned by POR %d, deduped %d)\n\
    \  checkpoint restores  %d\n"
    label
    (if r.M.exhaustive then "completed the scope" else "hit its budget")
    elapsed r.M.executions s.Explore.protocol_steps s.Explore.states_explored
    s.Explore.states_pruned_por s.Explore.states_deduped
    s.Explore.checkpoint_restores;
  List.iter
    (fun (c, k) ->
      Printf.printf "  %-4s violations      %d distinct\n" (Criteria.name c) k)
    r.M.distinct_failures

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  print_endline "== calibration: 2 replicas x 3 increments (both engines finish) ==";
  let base, base_t = timed (naive ~limit:max_int ~n:2 ~ops:3) in
  let red, red_t = timed (reduced ~n:2 ~ops:3) in
  describe "naive DFS" base base_t;
  describe "reduced engine" red red_t;
  let r =
    ratio base.M.stats.Explore.protocol_steps red.M.stats.Explore.protocol_steps
  in
  Printf.printf "replay reduction       %.1fx fewer protocol steps%s\n" r
    (if r >= 5.0 then " (>= 5x: PASS)" else " (< 5x: FAIL)");
  let agree = base.M.distinct_failures = red.M.distinct_failures in
  Printf.printf "verdict agreement      %s\n"
    (if agree then "identical distinct-failure counts (PASS)" else "MISMATCH (FAIL)");
  if (not agree) || r < 5.0 then exit 1;
  if not smoke then begin
    print_endline "";
    print_endline
      "== scale: 3 replicas x 3 increments (27-event schedules; naive capped) ==";
    let cap = 200_000 in
    let base3, base3_t = timed (naive ~limit:cap ~n:3 ~ops:3) in
    let red3, red3_t = timed (reduced ~por:false ~n:3 ~ops:3) in
    describe (Printf.sprintf "naive DFS (cap %d)" cap) base3 base3_t;
    describe "reduced engine" red3 red3_t;
    Printf.printf
      "the naive DFS burned %d protocol steps on %d schedules without\n\
       finishing (a vanishing fraction of the scope's interleavings); the\n\
       reduced engine covered the entire scope for %d steps total.\n"
      base3.M.stats.Explore.protocol_steps base3.M.executions
      red3.M.stats.Explore.protocol_steps;
    if base3.M.exhaustive then begin
      print_endline "unexpected: the naive engine finished the scale scope";
      exit 1
    end;
    if not red3.M.exhaustive then begin
      print_endline "FAIL: the reduced engine did not finish the scale scope";
      exit 1
    end
  end
