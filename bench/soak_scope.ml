(* Long-horizon soak scenario (experiment C10).

   Runs the set object through the simulated runner with the streaming
   sampler attached — the same plumbing `ucsim soak` uses — on two
   protocols with opposite memory stories: the universal construction
   (Algorithm 1, whose op-log retains every update forever) and the
   stability-GC variant (which prunes entries once every replica has
   delivered them, so the log stays bounded under FIFO channels).

   Each cell reports wall-clock ops/sec plus two growth slopes fit by
   least squares over the sampler's retained ring points: the
   per-replica log length (deterministic — the paper-level signal) and
   the process live words from Stdlib.Gc.quick_stat (host-dependent —
   the resource-probe signal a real soak watches). The verdict is the
   shape, not the speed: universal's log slope must be strictly
   positive and the GC protocol's final log must stay below the
   updates it absorbed. Rows go to BENCH_soak.json; `--smoke` shrinks
   the run for CI budget. *)

module Uni = Persist.Catchup (Generic.Make (Set_spec)) (Update_codec.For_set)
module Gc_set = Gc.Make (Set_spec)

(* Least-squares slope of [(t, v)] points, in value units per
   simulated-time unit; 0 for fewer than two points. *)
let slope points =
  let n = List.length points in
  if n < 2 then 0.0
  else begin
    let nf = float_of_int n in
    let sx = List.fold_left (fun a (t, _) -> a +. t) 0.0 points in
    let sy = List.fold_left (fun a (_, v) -> a +. v) 0.0 points in
    let sxx = List.fold_left (fun a (t, _) -> a +. (t *. t)) 0.0 points in
    let sxy = List.fold_left (fun a (t, v) -> a +. (t *. v)) 0.0 points in
    let den = (nf *. sxx) -. (sx *. sx) in
    if den = 0.0 then 0.0 else ((nf *. sxy) -. (sx *. sy)) /. den
  end

type row = {
  name : string;
  total_ops : int;
  wall_s : float;
  ops_per_sec : float;
  ticks : int;
  log_last : float;
  log_slope : float;
  live_last : float;
  live_slope : float;
}

let run_one name
    (module P : Protocol.PROTOCOL
      with type update = Set_spec.update
       and type query = Set_spec.query
       and type output = Set_spec.output) ~n ~ops ~seed =
  let module R = Runner.Make (P) in
  let rng = Prng.create seed in
  let workload =
    Workload.For_set.conflict ~rng ~n ~ops_per_process:ops ~domain:16 ~skew:1.0
      ~delete_ratio:0.3
  in
  let sampler = Obs.Series.sampler ~interval:100.0 () in
  Obs.Series.add_probe sampler (fun () ->
      (* uc_core's Gc functor shadows the runtime's module here. *)
      let q = Stdlib.Gc.quick_stat () in
      [ ("gc_live_words", [], float_of_int q.Stdlib.Gc.live_words) ]);
  let base = R.default_config ~n ~seed in
  let config =
    {
      base with
      R.fifo = true;  (* stability GC needs FIFO; keep the cells equal *)
      final_read = Some Set_spec.Read;
      sampler = Some sampler;
    }
  in
  let t0 = Unix.gettimeofday () in
  let r = R.run config ~workload in
  let wall_s = Unix.gettimeofday () -. t0 in
  assert r.R.converged;
  let store = Obs.Series.store sampler in
  let points series labels =
    match Obs.Series.find store series labels with
    | Some ring -> Obs.Series.ring_points ring
    | None -> []
  in
  let last = function [] -> 0.0 | ps -> snd (List.nth ps (List.length ps - 1)) in
  let log_points = points "log_len" [ ("pid", "0") ] in
  let live_points = points "gc_live_words" [] in
  let total_ops = n * ops in
  {
    name;
    total_ops;
    wall_s;
    ops_per_sec = float_of_int total_ops /. wall_s;
    ticks = Obs.Series.ticks sampler;
    log_last = last log_points;
    log_slope = slope log_points;
    live_last = last live_points;
    live_slope = slope live_points;
  }

let row_json r =
  Obs.Json.Obj
    [
      ("protocol", Obs.Json.Str r.name);
      ("total_ops", Obs.Json.Num (float_of_int r.total_ops));
      ("wall_s", Obs.Json.Num r.wall_s);
      ("ops_per_sec", Obs.Json.Num r.ops_per_sec);
      ("samples", Obs.Json.Num (float_of_int r.ticks));
      ("log_len_last", Obs.Json.Num r.log_last);
      ("log_len_slope", Obs.Json.Num r.log_slope);
      ("live_words_last", Obs.Json.Num r.live_last);
      ("live_words_slope", Obs.Json.Num r.live_slope);
    ]

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let n = 4 in
  let ops = if smoke then 300 else 2_000 in
  let seed = 42 in
  let rows =
    [
      run_one "universal" (module Uni) ~n ~ops ~seed;
      run_one "gc" (module Gc_set) ~n ~ops ~seed;
    ]
  in
  Printf.printf "%-10s %10s %8s %12s %8s %10s %12s %14s %16s\n" "protocol"
    "total-ops" "wall-s" "ops/sec" "samples" "log last" "log slope"
    "live last" "live slope";
  List.iter
    (fun r ->
      Printf.printf "%-10s %10d %8.3f %12.0f %8d %10.0f %12.4f %14.0f %16.1f\n"
        r.name r.total_ops r.wall_s r.ops_per_sec r.ticks r.log_last
        r.log_slope r.live_last r.live_slope)
    rows;
  let oc = open_out "BENCH_soak.json" in
  output_string oc
    (Obs.Json.to_string ~pretty:true (Obs.Json.Arr (List.map row_json rows)));
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_soak.json";
  let uni = List.nth rows 0 and gc = List.nth rows 1 in
  let growing = uni.log_slope > 0.0 in
  let bounded = gc.log_last < float_of_int gc.total_ops /. 2.0 in
  if growing && bounded then
    print_endline
      "soak shape: universal log grows, stability-GC log stays bounded (PASS)"
  else begin
    Printf.printf
      "FAIL: expected growing universal log (slope %.4f > 0: %b) and bounded \
       gc log (%.0f < %d/2: %b)\n"
      uni.log_slope growing gc.log_last gc.total_ops bounded;
    exit 1
  end
