(* Multicore engine throughput-scaling scenario.

   Sweeps the domain count over {1, 2, 4, 8} running the universal
   construction on the counter (the commutative hot path) and, at each
   domain count, a Zipf-contended or-set row. At 4 domains (2 in
   smoke) it then sweeps the sender-side coalescing knobs: a fixed
   batch threshold with the flush window at {1, 4, 16, 64}
   invocations, so the table shows ops/sec, stalls, frames, and
   mailbox high-water against the flush window. Every cell is a full
   [Throughput] differential run: the cell's `ok` is the Proposition 4
   parallel-vs-sequential fingerprint differential — replica logs
   pairwise equal, ω reads equal to the timestamp-order fold, a
   sequential-core replica restored from the converged log agreeing,
   and (counter) a full sequential Runner of the same scripts
   agreeing.

   The throughput verdict of this scope is correctness, not speed:
   ops/sec is whatever the hardware gives (on a single-core container
   the sweep measures mailbox/scheduling overhead and scales *down*;
   the >= 2x target at 4 domains needs >= 4 cores), so the exit code
   reflects the differential plus one hardware-independent guard: with
   a deliberately small mailbox at equal op counts, the batched run
   must stall at most a fifth as often as the unbatched one — a
   per-op-cost regression check on the coalescing path, not a
   wall-clock assertion. The table is written to BENCH_throughput.json;
   `--smoke` restricts the sweep to {1, 2} domains and fewer ops (CI
   budget). *)

module T_counter = Throughput.Bench (Counter_spec)
module T_set = Throughput.Bench (Set_spec)

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let obs =
    if Array.exists (( = ) "--obs") Sys.argv then Some (Obs.create ()) else None
  in
  let domain_counts =
    List.filter (fun d -> (not smoke) || d <= 2) [ 1; 2; 4; 8 ]
  in
  let ops = if smoke then 2_000 else 20_000 in
  let seed = 42 in
  let failures = ref [] in
  let cell spec v ~ops_per_domain ~row_of =
    let r = row_of ~ops_per_domain v in
    let r = { r with Throughput.spec } in
    if not r.Throughput.ok then failures := spec :: !failures;
    r
  in
  let scale_rows =
    List.concat_map
      (fun domains ->
        let counter =
          let scripts =
            T_counter.uniform_scripts ~seed ~domains ~ops ~query_ratio:0.0
          in
          cell
            (Printf.sprintf "counter/%d" domains)
            (T_counter.measure ?obs ~domains ~final_read:Counter_spec.Value
               ~scripts ())
            ~ops_per_domain:ops
            ~row_of:(fun ~ops_per_domain v -> T_counter.row ~ops_per_domain v)
        in
        let set =
          let scripts =
            Throughput.set_zipf_scripts ~seed ~domains ~ops:(ops / 2) ~skew:1.0
              ~delete_ratio:0.3
          in
          cell
            (Printf.sprintf "set/%d" domains)
            (T_set.measure ?obs ~domains ~final_read:Set_spec.Read ~scripts ())
            ~ops_per_domain:(ops / 2)
            ~row_of:(fun ~ops_per_domain v -> T_set.row ~ops_per_domain v)
        in
        [ counter; set ])
      domain_counts
  in
  (* Flush-window sweep at the acceptance row's domain count (4; 2 in
     smoke): batch threshold fixed high enough that the window governs
     flush cadence. *)
  let sweep_domains = min 4 (List.fold_left max 1 domain_counts) in
  let sweep_batch = 32 in
  let window_rows =
    List.map
      (fun window ->
        let scripts =
          T_counter.uniform_scripts ~seed ~domains:sweep_domains ~ops
            ~query_ratio:0.0
        in
        cell
          (Printf.sprintf "counter/%d/w%d" sweep_domains window)
          (T_counter.measure ?obs ~batch_every:sweep_batch ~flush_window:window
             ~domains:sweep_domains ~final_read:Counter_spec.Value ~scripts ())
          ~ops_per_domain:ops
          ~row_of:(fun ~ops_per_domain v ->
            T_counter.row ~batch:sweep_batch ~flush_window:window
              ~ops_per_domain v))
      [ 1; 4; 16; 64 ]
  in
  (* Stall-regression guard: equal ops into a deliberately small
     mailbox, unbatched vs batched. Coalescing must cut the number of
     full-mailbox retries by at least 5x — a per-op cost property that
     holds on any core count, unlike wall-clock throughput. *)
  let guard_capacity = 64 in
  let guard_cell label ~batch_every ~flush_window =
    let scripts =
      T_counter.uniform_scripts ~seed ~domains:sweep_domains ~ops
        ~query_ratio:0.0
    in
    let measured =
      if batch_every = 1 then
        T_counter.measure ?obs ~mailbox_capacity:guard_capacity
          ~domains:sweep_domains ~final_read:Counter_spec.Value ~scripts ()
      else
        T_counter.measure ?obs ~mailbox_capacity:guard_capacity ~batch_every
          ~flush_window ~domains:sweep_domains ~final_read:Counter_spec.Value
          ~scripts ()
    in
    cell label measured ~ops_per_domain:ops
      ~row_of:(fun ~ops_per_domain v ->
        T_counter.row ~batch:batch_every ~flush_window ~ops_per_domain v)
  in
  let guard_unbatched =
    guard_cell
      (Printf.sprintf "counter/%d/guard-unbatched" sweep_domains)
      ~batch_every:1 ~flush_window:0
  in
  let guard_batched =
    guard_cell
      (Printf.sprintf "counter/%d/guard-batched" sweep_domains)
      ~batch_every:sweep_batch ~flush_window:16
  in
  let rows = scale_rows @ window_rows @ [ guard_unbatched; guard_batched ] in
  Printf.printf "%-28s %8s %10s %6s %7s %9s %14s %10s %10s %7s %6s\n" "spec"
    "domains" "ops" "batch" "window" "frames" "ops/sec" "p99 us" "stalls"
    "depth" "ok";
  List.iter
    (fun (r : Throughput.row) ->
      Printf.printf "%-28s %8d %10d %6d %7d %9d %14.0f %10.2f %10d %7d %6b\n"
        r.Throughput.spec r.Throughput.domains r.Throughput.total_ops
        r.Throughput.batch r.Throughput.flush_window r.Throughput.frames
        r.Throughput.ops_per_sec r.Throughput.p99_us r.Throughput.mailbox_stalls
        r.Throughput.mailbox_max_depth r.Throughput.ok)
    rows;
  Throughput.emit_json "BENCH_throughput.json" rows;
  print_endline "wrote BENCH_throughput.json";
  Option.iter
    (fun o ->
      Obs.finalize o ~live:[];
      Format.printf "telemetry:@.%a@." Obs.Registry.pp o.Obs.registry)
    obs;
  (* Scaling summary: informative, hardware-dependent, never the verdict. *)
  let counter_at d =
    List.find_opt
      (fun (r : Throughput.row) ->
        r.Throughput.spec = Printf.sprintf "counter/%d" d)
      rows
  in
  (match (counter_at 1, counter_at sweep_domains) with
  | Some one, Some many ->
    let ratio = many.Throughput.ops_per_sec /. one.Throughput.ops_per_sec in
    Printf.printf
      "counter scaling %dx1 -> %d domains   %.2fx aggregate ops/sec (%d core%s \
       available)\n"
      1 many.Throughput.domains ratio
      (Domain.recommended_domain_count ())
      (if Domain.recommended_domain_count () = 1 then "" else "s")
  | _ -> ());
  let u = guard_unbatched.Throughput.mailbox_stalls in
  let b = guard_batched.Throughput.mailbox_stalls in
  let guard_ok = u < 20 || b * 5 <= u in
  Printf.printf "stall guard: unbatched %d, batched %d (%s)\n" u b
    (if guard_ok then
       if u < 20 then "unbatched run barely stalled; guard vacuous"
       else "PASS: >= 5x fewer"
     else "FAIL: batching did not cut stalls 5x");
  if not guard_ok then failures := "stall-guard" :: !failures;
  match !failures with
  | [] -> print_endline "differential: every cell converged to the sequential fold (PASS)"
  | specs ->
    Printf.printf "FAIL: parallel/sequential differential mismatch in: %s\n"
      (String.concat ", " (List.rev specs));
    exit 1
