(* Multicore engine throughput-scaling scenario.

   Sweeps the domain count over {1, 2, 4, 8} running the universal
   construction on the counter (the commutative hot path) and, at each
   domain count, a Zipf-contended or-set row. Every cell is a full
   [Throughput] differential run: aggregate ops/sec and p99 latency are
   reported, and the cell's `ok` is the Proposition 4 parallel-vs-
   sequential fingerprint differential — replica logs pairwise equal,
   ω reads equal to the timestamp-order fold, a sequential-core replica
   restored from the converged log agreeing, and (counter) a full
   sequential Runner of the same scripts agreeing.

   The verdict of this scope is correctness, not speed: throughput is
   whatever the hardware gives (on a single-core container the sweep
   measures mailbox/scheduling overhead and scales *down*; the >= 2x
   target at 4 domains needs >= 4 cores), so the exit code reflects
   only the differential. The table is written to
   BENCH_throughput.json; `--smoke` restricts the sweep to {1, 2}
   domains and fewer ops (CI budget). *)

module T_counter = Throughput.Bench (Counter_spec)
module T_set = Throughput.Bench (Set_spec)

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let obs =
    if Array.exists (( = ) "--obs") Sys.argv then Some (Obs.create ()) else None
  in
  let domain_counts =
    List.filter (fun d -> (not smoke) || d <= 2) [ 1; 2; 4; 8 ]
  in
  let ops = if smoke then 2_000 else 20_000 in
  let seed = 42 in
  let failures = ref [] in
  let cell spec v ~ops_per_domain ~row_of =
    let r = row_of ~ops_per_domain v in
    if not r.Throughput.ok then failures := spec :: !failures;
    r
  in
  let rows =
    List.concat_map
      (fun domains ->
        let counter =
          let scripts =
            T_counter.uniform_scripts ~seed ~domains ~ops ~query_ratio:0.0
          in
          cell
            (Printf.sprintf "counter/%d" domains)
            (T_counter.measure ?obs ~domains ~final_read:Counter_spec.Value
               ~scripts ())
            ~ops_per_domain:ops ~row_of:T_counter.row
        in
        let set =
          let scripts =
            Throughput.set_zipf_scripts ~seed ~domains ~ops:(ops / 2) ~skew:1.0
              ~delete_ratio:0.3
          in
          cell
            (Printf.sprintf "set/%d" domains)
            (T_set.measure ?obs ~domains ~final_read:Set_spec.Read ~scripts ())
            ~ops_per_domain:(ops / 2) ~row_of:T_set.row
        in
        [ counter; set ])
      domain_counts
  in
  Printf.printf "%-8s %8s %10s %14s %10s %10s %6s\n" "spec" "domains" "ops"
    "ops/sec" "p99 us" "stalls" "ok";
  List.iter
    (fun (r : Throughput.row) ->
      Printf.printf "%-8s %8d %10d %14.0f %10.2f %10d %6b\n" r.Throughput.spec
        r.Throughput.domains r.Throughput.total_ops r.Throughput.ops_per_sec
        r.Throughput.p99_us r.Throughput.mailbox_stalls r.Throughput.ok)
    rows;
  Throughput.emit_json "BENCH_throughput.json" rows;
  print_endline "wrote BENCH_throughput.json";
  Option.iter
    (fun o ->
      Obs.finalize o ~live:[];
      Format.printf "telemetry:@.%a@." Obs.Registry.pp o.Obs.registry)
    obs;
  (* Scaling summary: informative, hardware-dependent, never the verdict. *)
  let counter_at d =
    List.find_opt
      (fun (r : Throughput.row) ->
        r.Throughput.spec = "counter" && r.Throughput.domains = d)
      rows
  in
  (match (counter_at 1, counter_at (if smoke then 2 else 4)) with
  | Some one, Some many ->
    let ratio = many.Throughput.ops_per_sec /. one.Throughput.ops_per_sec in
    Printf.printf
      "counter scaling %dx1 -> %d domains   %.2fx aggregate ops/sec (%d core%s \
       available)\n"
      1 many.Throughput.domains ratio
      (Domain.recommended_domain_count ())
      (if Domain.recommended_domain_count () = 1 then "" else "s")
  | _ -> ());
  match !failures with
  | [] -> print_endline "differential: every cell converged to the sequential fold (PASS)"
  | specs ->
    Printf.printf "FAIL: parallel/sequential differential mismatch in: %s\n"
      (String.concat ", " (List.rev specs));
    exit 1
