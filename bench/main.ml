(* Benchmark harness.

   Two layers, one executable:

   1. Bechamel micro-benchmarks — wall-clock cost of the kernels behind
      each experiment table (one Test.make group per experiment id), so
      the asymptotic claims of Section VII.C are backed by measured time
      and not only by operation counting.

   2. The experiment tables themselves (Experiments.all): every figure
      and analytical claim of the paper regenerated and printed in the
      layout EXPERIMENTS.md records. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Replica harness used by the micro-benchmarks: a single replica with
   a no-op network, pre-loaded with a log of the given length.          *)
(* ------------------------------------------------------------------ *)

let dummy_ctx ~pid ~n : _ Protocol.ctx =
  {
    Protocol.pid;
    n;
    now = (fun () -> 0.0);
    send = (fun ~dst:_ _ -> ());
    broadcast = (fun _ -> ());
    broadcast_batch = (fun _ -> ());
    set_timer = (fun ~delay:_ _ -> ());
    count_replay = (fun _ -> ());
    obs = None;
  }

module Uni_set = Generic.Make (Set_spec)
module Uni_list = Generic_ref.Make (Set_spec)

(* A second runtime instance of the same functor: its own
   [checkpoint_interval] cell, set to 0 below, isolates the oplog's
   binary-search insert from its checkpoint cache in the C2 rows. *)
module Uni_nockpt = Generic.Make (Set_spec)

let () = Uni_nockpt.checkpoint_interval := 0

module Memo_set = Memo.Make (Set_spec)
module Undo_set = Undo.Make (Undoable.Set)

(* Every benchmarked result flows through [Sys.opaque_identity]: the
   optimiser must materialise it, yet nothing escapes to a global the
   way the old [query_result] ref did. *)
let sink x = ignore (Sys.opaque_identity x)

(* C2: one query against a 512-update log, per construction variant. *)
let test_query_cost =
  let load (type t)
      (module P : Protocol.PROTOCOL
        with type update = Set_spec.update
         and type t = t) =
    let r = P.create (dummy_ctx ~pid:0 ~n:3) in
    let rng = Prng.create 99 in
    for _ = 1 to 512 do
      P.update r (Set_spec.random_update rng) ~on_done:ignore
    done;
    r
  in
  let uni = load (module Uni_set)
  and uni_list = load (module Uni_list)
  and uni_nockpt = load (module Uni_nockpt)
  and memo = load (module Memo_set)
  and undo = load (module Undo_set) in
  let lww =
    let r = Lww_memory.create (dummy_ctx ~pid:0 ~n:3) in
    let rng = Prng.create 3 in
    for _ = 1 to 512 do
      Lww_memory.update r (Memory_spec.random_update rng) ~on_done:ignore
    done;
    r
  in
  Test.make_grouped ~name:"C2-query" ~fmt:"%s/%s"
    [
      Test.make ~name:"universal-512"
        (Staged.stage (fun () ->
             Uni_set.query uni Set_spec.Read ~on_result:sink));
      Test.make ~name:"universal-list-512"
        (Staged.stage (fun () ->
             Uni_list.query uni_list Set_spec.Read ~on_result:sink));
      Test.make ~name:"universal-nockpt-512"
        (Staged.stage (fun () ->
             Uni_nockpt.query uni_nockpt Set_spec.Read ~on_result:sink));
      Test.make ~name:"memo-512"
        (Staged.stage (fun () ->
             Memo_set.query memo Set_spec.Read ~on_result:sink));
      Test.make ~name:"undo-512"
        (Staged.stage (fun () ->
             Undo_set.query undo Set_spec.Read ~on_result:sink));
      Test.make ~name:"lww-memory-512"
        (Staged.stage (fun () ->
             Lww_memory.query lww (Memory_spec.Read 1) ~on_result:sink));
    ]

(* C1: the local cost of one update per protocol family. *)
let test_update_cost =
  Test.make_grouped ~name:"C1-update" ~fmt:"%s/%s"
    [
      Test.make ~name:"universal"
        (let r = Uni_set.create (dummy_ctx ~pid:0 ~n:3) in
         let rng = Prng.create 4 in
         Staged.stage (fun () ->
             Uni_set.update r (Set_spec.random_update rng) ~on_done:ignore));
      Test.make ~name:"or-set"
        (let r = Orset_crdt.create (dummy_ctx ~pid:0 ~n:3) in
         let rng = Prng.create 4 in
         Staged.stage (fun () ->
             Orset_crdt.update r (Set_spec.random_update rng) ~on_done:ignore));
      Test.make ~name:"lww-set"
        (let r = Lwwset_crdt.create (dummy_ctx ~pid:0 ~n:3) in
         let rng = Prng.create 4 in
         Staged.stage (fun () ->
             Lwwset_crdt.update r (Set_spec.random_update rng) ~on_done:ignore));
    ]

(* F1: deciding the criteria of the paper's figures. *)
let test_checkers =
  let module C = Criteria.Make (Set_spec) in
  Test.make_grouped ~name:"F1-checkers" ~fmt:"%s/%s"
    [
      Test.make ~name:"UC(Fig.1b)"
        (Staged.stage (fun () -> sink (C.holds Criteria.UC Figures.fig1b)));
      Test.make ~name:"SEC(Fig.1a)"
        (Staged.stage (fun () -> sink (C.holds Criteria.SEC Figures.fig1a)));
      Test.make ~name:"SUC(Fig.1d)"
        (Staged.stage (fun () -> sink (C.holds Criteria.SUC Figures.fig1d)));
      Test.make ~name:"PC(Fig.2)"
        (Staged.stage (fun () -> sink (C.holds Criteria.PC Figures.fig2)));
    ]

(* P1/T6: a full small simulation, end to end. *)
let test_simulation =
  Test.make_grouped ~name:"P1-simulation" ~fmt:"%s/%s"
    [
      Test.make ~name:"fig2-universal"
        (Staged.stage (fun () ->
             let module R = Runner.Make (Uni_set) in
             let config =
               { (R.default_config ~n:2 ~seed:1) with R.final_read = Some Set_spec.Read }
             in
             sink (R.run config ~workload:(Workload.For_set.fig2_program ()))));
    ]

(* P4: one exhaustive model check of a 3-update race. *)
let test_modelcheck =
  Test.make_grouped ~name:"P4-modelcheck" ~fmt:"%s/%s"
    [
      Test.make ~name:"universal-3upd"
        (Staged.stage (fun () ->
             let module M = Model_check.Make (Uni_set) in
             let scripts =
               [|
                 [ Protocol.Invoke_update (Set_spec.Insert 1);
                   Protocol.Invoke_update (Set_spec.Delete 2) ];
                 [ Protocol.Invoke_update (Set_spec.Insert 2) ];
               |]
             in
             sink (M.explore ~scripts ~final_read:Set_spec.Read ())));
    ]

(* A fully-meshed trio of replicas delivering synchronously: the
   protocol's message type stays abstract, messages flow through the
   broadcast closure. *)
let mesh (type t m)
    (module P : Protocol.PROTOCOL with type t = t and type message = m) n =
  let cell : t option array = Array.make n None in
  let ctx pid =
    {
      (dummy_ctx ~pid ~n) with
      Protocol.broadcast =
        (fun msg ->
          Array.iteri
            (fun j r ->
              if j <> pid then
                match r with Some r -> P.receive r ~src:pid msg | None -> ())
            cell);
    }
  in
  Array.iteri (fun i _ -> cell.(i) <- Some (P.create (ctx i))) cell;
  Array.map Option.get cell

(* C3: dissemination step (update + everyone receives), with and without
   stability compaction: Generic's log keeps growing — inserts get
   slower — while the GC'd log stays short. *)
let test_receive_cost =
  let module Gc_set = Gc.Make (Set_spec) in
  Test.make_grouped ~name:"C3-receive" ~fmt:"%s/%s"
    [
      Test.make ~name:"generic-disseminate"
        (let rs = mesh (module Uni_set) 3 in
         let rng = Prng.create 5 in
         Staged.stage (fun () ->
             Uni_set.update rs.(0) (Set_spec.random_update rng) ~on_done:ignore));
      Test.make ~name:"gc-disseminate"
        (let rs = mesh (module Gc_set) 3 in
         let rng = Prng.create 5 in
         let turn = ref 0 in
         Staged.stage (fun () ->
             (* Rotate the updater so every process keeps advancing the
                stability bound. *)
             turn := (!turn + 1) mod 3;
             Gc_set.update rs.(!turn) (Set_spec.random_update rng) ~on_done:ignore));
    ]

(* A1: one message delayed behind 16 fresher local updates — the
   undo/redo repair path at a fixed depth. [a] hears [b] only when the
   bench drains the hold-back queue; [b] hears [a] immediately so its
   clock keeps pace and the lateness stays ~16 deep in steady state. *)
let test_late_message =
  Test.make_grouped ~name:"A1-late-message" ~fmt:"%s/%s"
    [
      Test.make ~name:"undo-repair-16-deep"
        (let held : Undo_set.message Queue.t = Queue.create () in
         let b_cell = ref None in
         let ctx_a =
           {
             (dummy_ctx ~pid:0 ~n:2) with
             Protocol.broadcast =
               (fun msg ->
                 match !b_cell with
                 | Some b -> Undo_set.receive b ~src:0 msg
                 | None -> ());
           }
         in
         let a = Undo_set.create ctx_a in
         let ctx_b =
           {
             (dummy_ctx ~pid:1 ~n:2) with
             Protocol.broadcast = (fun msg -> Queue.add msg held);
           }
         in
         let b = Undo_set.create ctx_b in
         b_cell := Some b;
         let rng = Prng.create 6 in
         Staged.stage (fun () ->
             Undo_set.update b (Set_spec.random_update rng) ~on_done:ignore;
             for _ = 1 to 16 do
               Undo_set.update a (Set_spec.random_update rng) ~on_done:ignore
             done;
             Queue.iter (fun msg -> Undo_set.receive a ~src:1 msg) held;
             Queue.clear held))
    ]

(* T6/F-checkers on a run-extracted history: UC checking at realistic
   sizes (12 updates). *)
let test_uc_on_run =
  let module C = Criteria.Make (Set_spec) in
  let history =
    let module R = Runner.Make (Uni_set) in
    let rng = Prng.create 17 in
    let workload =
      Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:4 ~domain:4 ~skew:1.0
        ~delete_ratio:0.4
    in
    let config = { (R.default_config ~n:3 ~seed:17) with R.final_read = Some Set_spec.Read } in
    (R.run config ~workload).R.history
  in
  Test.make_grouped ~name:"T6-uc-check" ~fmt:"%s/%s"
    [
      Test.make ~name:"UC(12-update run)"
        (Staged.stage (fun () -> sink (C.holds Criteria.UC history)));
    ]

(* C7: the multicore engine end to end — domain spawn, mailbox
   exchange, quiescence — against the sequential virtual-time Runner on
   the same scripts. On a single-core host the gap is pure engine
   overhead; with real cores it becomes the scaling headroom that
   BENCH_throughput.json quantifies. *)
let test_parallel_engine =
  let module B = Throughput.Bench (Counter_spec) in
  let module Seq = Runner.Make (B.G) in
  let scripts = B.uniform_scripts ~seed:11 ~domains:2 ~ops:64 ~query_ratio:0.0 in
  Test.make_grouped ~name:"C7-parallel" ~fmt:"%s/%s"
    [
      Test.make ~name:"parallel-universal-2dom"
        (Staged.stage (fun () ->
             let cfg =
               {
                 (B.E.default_config ~domains:2) with
                 B.E.final_read = Some Counter_spec.Value;
               }
             in
             sink (B.E.run cfg ~workload:scripts)));
      Test.make ~name:"sequential-universal-2proc"
        (Staged.stage (fun () ->
             let cfg =
               {
                 (Seq.default_config ~n:2 ~seed:11) with
                 Seq.final_read = Some Counter_spec.Value;
               }
             in
             sink (Seq.run cfg ~workload:scripts)));
    ]

let all_tests =
  [
    test_query_cost;
    test_update_cost;
    test_checkers;
    test_simulation;
    test_modelcheck;
    test_receive_cost;
    test_late_message;
    test_uc_on_run;
    test_parallel_engine;
  ]

let run_bechamel () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  List.iter
    (fun grouped ->
      let raw = Benchmark.all cfg instances grouped in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
      List.iter
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-36s %12.1f ns/op\n" name est
          | Some _ | None -> Printf.printf "  %-36s (no estimate)\n" name)
        (List.sort (fun (a, _) (b, _) -> String.compare a b) rows))
    all_tests

let () =
  print_endline "=== micro-benchmarks (bechamel, monotonic clock) ===";
  run_bechamel ();
  print_newline ();
  print_endline "=== experiment tables (paper reproduction) ===";
  List.iter
    (fun (id, title, body) -> Printf.printf "== %s: %s ==\n%s\n" id title body)
    (Experiments.all ~seed:42 ())
