(* ucsim — command-line driver for the update-consistency reproduction.

   Subcommands:
     figures      print the Figure 1 matrix and the Figure 2 analysis
     experiments  run the experiment suite (all or by id)
     run          simulate one protocol on a generated workload
     replay       re-execute a journaled run and verify it reproduces it
     diff         first structural divergence between two journals
     modelcheck   exhaustively check a protocol on a small script
     storm        flash-crowd open-loop load with SLO verdicts
     shrink       minimize a monitor-flagged journal to a smallest one
     soak         long-horizon run with streaming series and alert rules
     report       render a registry dump, or series sparklines (--series)
     list         show available protocols and experiments *)

let experiment_ids =
  [ "F1"; "F2"; "P1"; "P4"; "T6"; "T6b"; "C1"; "C2"; "C3"; "C4"; "C4b"; "T7"; "S1"; "C5"; "C6"; "A1"; "A2"; "A3" ]

(* ------------------------------------------------------------------ *)
(* Protocol registry for `run`: each named protocol is paired with its
   object type and a driver that simulates a conflict workload on it.  *)
(* ------------------------------------------------------------------ *)

type run_params = {
  protocol : string;  (* registry name, recorded in the journal header *)
  seed : int;
  n : int;
  ops : int;
  shards : int;
      (* shard count for the sharded object space ("sharded" protocol);
         1 everywhere else *)
  keys : int;  (* key domain of the sharded workload *)
  rebalance : float option;
      (* hot-shard policy check interval; None = static ring *)
  mean_delay : float;
  fifo : bool;
  crashes : (float * int) list;  (* (time, pid) crash schedule *)
  check : bool;
  spacetime : bool;
  log_core : [ `List | `Array ];
      (* op-log substrate for the universal protocols: the seed's cons
         list or the array-backed Oplog (the default) *)
  checkpoint_interval : int option;
      (* override for Generic's interval-checkpoint cadence; only
         meaningful with [log_core = `Array] *)
  batch_window : float option;
  obs_on : bool;
  trace_out : string option;
  registry_out : string option;
  span_dump : bool;
  probe_interval : float option;
  partitions : Network.partition list;
  churn : Network.churn_event list;
  scripts : string list list option;
      (* explicit per-process set scripts (printed ops) overriding the
         generated workload — how a minimized journal from `shrink`
         replays from the file alone *)
  journal_out : string option;
  journal : Obs.Journal.t option;
      (* in-memory capture used by `replay` instead of a file *)
  monitors : Obs.Monitor.criterion list;
  obs : Obs.t option;
      (* pre-built telemetry bundle. `soak` (and a soak replay) builds
         it up front so the streaming sampler can snapshot its registry
         every tick; everyone else leaves it None and lets
         [obs_of_params] decide *)
  sample_interval : float option;
      (* soak sampler cadence in simulated time; Some marks the journal
         header as a soak run *)
  duration : float option;
      (* soak horizon: overrides the runner deadline (simulated time) *)
  rules : Obs.Alert.rule list;  (* soak alert rules, header-recorded *)
  sampler : Obs.Series.sampler option;
      (* pre-built streaming sampler, threaded into every runner config;
         None (the default everywhere but `soak`) samples nothing *)
}

let log_core_name = function `List -> "list" | `Array -> "array"

(* The journal's self-description: everything `replay` needs to rebuild
   this run_params record and re-execute the identical schedule. *)
let journal_header p =
  let num i = Obs.Json.Num (float_of_int i) in
  let opt f = function None -> Obs.Json.Null | Some v -> f v in
  [
    ("protocol", Obs.Json.Str p.protocol);
    ("seed", num p.seed);
    ("n", num p.n);
    ("ops", num p.ops);
    ("mean_delay", Obs.Json.Num p.mean_delay);
    ("fifo", Obs.Json.Bool p.fifo);
    ( "crashes",
      Obs.Json.Arr
        (List.map
           (fun (time, pid) ->
             Obs.Json.Obj [ ("t", Obs.Json.Num time); ("pid", num pid) ])
           p.crashes) );
    ("log_core", Obs.Json.Str (log_core_name p.log_core));
    ("checkpoint_interval", opt num p.checkpoint_interval);
    ("batch_window", opt (fun w -> Obs.Json.Num w) p.batch_window);
    ("probe_interval", opt (fun w -> Obs.Json.Num w) p.probe_interval);
    ( "monitors",
      Obs.Json.Arr
        (List.map
           (fun c -> Obs.Json.Str (Obs.Monitor.criterion_name c))
           p.monitors) );
    ( "partitions",
      Obs.Json.Arr
        (List.map
           (fun (pa : Network.partition) ->
             Obs.Json.Obj
               [
                 ("from", Obs.Json.Num pa.Network.from_time);
                 ("to", Obs.Json.Num pa.Network.to_time);
                 ("group", Obs.Json.Arr (List.map num pa.Network.group));
               ])
           p.partitions) );
    ( "churn",
      Obs.Json.Arr
        (List.map
           (fun (ce : Network.churn_event) ->
             Obs.Json.Obj
               [
                 ("t", Obs.Json.Num ce.Network.time);
                 ("pid", num ce.Network.pid);
                 ( "action",
                   Obs.Json.Str (Network.churn_action_name ce.Network.action) );
               ])
           p.churn) );
    ( "scripts",
      opt
        (fun ss ->
          Obs.Json.Arr
            (List.map
               (fun s ->
                 Obs.Json.Arr (List.map (fun op -> Obs.Json.Str op) s))
               ss))
        p.scripts );
  ]
  (* Shard fields appear only on sharded runs, so single-object journal
     headers — and the seeded fingerprint pins over them — stay
     byte-identical to the seed's. *)
  @ (if p.shards > 1 then
       [
         ("shards", num p.shards);
         ("keys", num p.keys);
         ("rebalance", opt (fun w -> Obs.Json.Num w) p.rebalance);
       ]
     else [])
  (* Soak fields likewise appear only on soak runs: `replay` rebuilds
     the sampler and alert rules from them so a soak journal's Alert
     events reproduce, while plain-run headers stay byte-identical. *)
  @ (match p.sample_interval with
    | None -> []
    | Some dt ->
      [
        ("sample_interval", Obs.Json.Num dt);
        ("duration", opt (fun d -> Obs.Json.Num d) p.duration);
        ( "rules",
          Obs.Json.Arr
            (List.map
               (fun r -> Obs.Json.Str (Obs.Alert.rule_to_string r))
               p.rules) );
      ])

(* Inverse of [journal_header]: rebuild the run_params a journal was
   recorded under, attaching [journal] as the replay's capture journal.
   Raises [Failure] on a header that does not describe a run. *)
let params_of_header ~journal header =
  let get k = List.assoc_opt k header in
  let missing k = failwith (Printf.sprintf "journal header: bad or missing field %S" k) in
  let num k = match get k with Some (Obs.Json.Num f) -> f | _ -> missing k in
  let int k = int_of_float (num k) in
  let bool k = match get k with Some (Obs.Json.Bool b) -> b | _ -> missing k in
  let str k = match get k with Some (Obs.Json.Str s) -> s | _ -> missing k in
  let opt_num k =
    match get k with
    | Some (Obs.Json.Num f) -> Some f
    | Some Obs.Json.Null | None -> None
    | _ -> missing k
  in
  let log_core =
    match str "log_core" with
    | "list" -> `List
    | "array" -> `Array
    | s -> failwith (Printf.sprintf "journal header: unknown log core %S" s)
  in
  let monitors =
    match get "monitors" with
    | Some (Obs.Json.Arr xs) ->
      List.map
        (function
          | Obs.Json.Str s -> (
            match Obs.Monitor.criterion_of_name s with
            | Some c -> c
            | None -> failwith (Printf.sprintf "journal header: unknown criterion %S" s))
          | _ -> missing "monitors")
        xs
    | None -> []
    | _ -> missing "monitors"
  in
  let partitions =
    match get "partitions" with
    | Some (Obs.Json.Arr xs) ->
      List.map
        (function
          | Obs.Json.Obj fields -> (
            let fget k = List.assoc_opt k fields in
            match (fget "from", fget "to", fget "group") with
            | ( Some (Obs.Json.Num from_time),
                Some (Obs.Json.Num to_time),
                Some (Obs.Json.Arr group) ) ->
              {
                Network.from_time;
                to_time;
                group =
                  List.map
                    (function
                      | Obs.Json.Num f -> int_of_float f
                      | _ -> missing "partitions")
                    group;
              }
            | _ -> missing "partitions")
          | _ -> missing "partitions")
        xs
    | None -> []
    | _ -> missing "partitions"
  in
  let crashes =
    match get "crashes" with
    | Some (Obs.Json.Arr xs) ->
      List.map
        (function
          | Obs.Json.Obj fields -> (
            let fget k = List.assoc_opt k fields in
            match (fget "t", fget "pid") with
            | Some (Obs.Json.Num time), Some (Obs.Json.Num pid) ->
              (time, int_of_float pid)
            | _ -> missing "crashes")
          | _ -> missing "crashes")
        xs
    | None -> (
      (* journals from before the explicit crash schedule carry the old
         one-crash flag *)
      match get "crash" with
      | Some (Obs.Json.Bool true) -> [ (50.0, int "n" - 1) ]
      | Some (Obs.Json.Bool false) | None -> []
      | _ -> missing "crash")
    | _ -> missing "crashes"
  in
  let churn =
    match get "churn" with
    | Some (Obs.Json.Arr xs) ->
      List.map
        (function
          | Obs.Json.Obj fields -> (
            let fget k = List.assoc_opt k fields in
            match (fget "t", fget "pid", fget "action") with
            | ( Some (Obs.Json.Num time),
                Some (Obs.Json.Num pid),
                Some (Obs.Json.Str a) ) -> (
              match Network.churn_action_of_name a with
              | Some action -> { Network.time; pid = int_of_float pid; action }
              | None ->
                failwith (Printf.sprintf "journal header: unknown churn action %S" a))
            | _ -> missing "churn")
          | _ -> missing "churn")
        xs
    | None -> []
    | _ -> missing "churn"
  in
  let scripts =
    match get "scripts" with
    | Some (Obs.Json.Arr xs) ->
      Some
        (List.map
           (function
             | Obs.Json.Arr ops ->
               List.map
                 (function Obs.Json.Str s -> s | _ -> missing "scripts")
                 ops
             | _ -> missing "scripts")
           xs)
    | None | Some Obs.Json.Null -> None
    | _ -> missing "scripts"
  in
  let rules =
    match get "rules" with
    | Some (Obs.Json.Arr xs) ->
      List.map
        (function
          | Obs.Json.Str s -> (
            match Obs.Alert.rule_of_string s with
            | r -> r
            | exception Invalid_argument msg -> failwith msg)
          | _ -> missing "rules")
        xs
    | None -> []
    | _ -> missing "rules"
  in
  let opt_int k = Option.map int_of_float (opt_num k) in
  {
    protocol = str "protocol";
    seed = int "seed";
    n = int "n";
    ops = int "ops";
    shards = Option.value ~default:1 (opt_int "shards");
    keys = Option.value ~default:64 (opt_int "keys");
    rebalance = opt_num "rebalance";
    mean_delay = num "mean_delay";
    fifo = bool "fifo";
    crashes;
    check = false;
    spacetime = false;
    log_core;
    checkpoint_interval = Option.map int_of_float (opt_num "checkpoint_interval");
    batch_window = opt_num "batch_window";
    obs_on = false;
    trace_out = None;
    registry_out = None;
    span_dump = false;
    probe_interval = opt_num "probe_interval";
    partitions;
    churn;
    scripts;
    journal_out = None;
    journal = Some journal;
    monitors;
    obs = None;
    sample_interval = opt_num "sample_interval";
    duration = opt_num "duration";
    rules;
    sampler = None;
  }

(* Telemetry is on as soon as any output that needs it was requested. *)
let obs_of_params p =
  match p.obs with
  | Some o ->
    (* Pre-built by `soak` (or a soak replay) so its sampler could take
       the registry; only the header is still ours to stamp. *)
    Option.iter (fun j -> Obs.Journal.set_header j (journal_header p)) o.Obs.journal;
    Some o
  | None ->
  let journal =
    if p.journal_out <> None || p.journal <> None then begin
      let j =
        match p.journal with Some j -> j | None -> Obs.Journal.create ()
      in
      Obs.Journal.set_header j (journal_header p);
      Some j
    end
    else None
  in
  if
    p.obs_on || p.trace_out <> None || p.registry_out <> None || p.span_dump
    || p.probe_interval <> None || journal <> None || p.monitors <> []
  then Some (Obs.create ?journal ())
  else None

let write_json file json =
  let oc = open_out file in
  output_string oc (Obs.Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc

let trace_meta p =
  let opt f = function None -> Obs.Json.Null | Some v -> f v in
  [
    ("seed", Obs.Json.Num (float_of_int p.seed));
    ("replicas", Obs.Json.Num (float_of_int p.n));
    ("protocol", Obs.Json.Str p.protocol);
    ("log_core", Obs.Json.Str (log_core_name p.log_core));
    ("batch_window", opt (fun w -> Obs.Json.Num w) p.batch_window);
  ]

let emit_obs p obs =
  match obs with
  | None -> ()
  | Some (o : Obs.t) ->
    (* Host-resource gauges, stamped once at dump time rather than
       during the run: their values depend on allocator state, so
       keeping them out of the library layer keeps its goldens stable.
       (Stdlib.Gc — uc_core's Gc module shadows the runtime's here.) *)
    let q = Stdlib.Gc.quick_stat () in
    Obs.Registry.set
      (Obs.Registry.gauge o.registry "gc_live_words")
      (float_of_int q.Stdlib.Gc.live_words);
    Obs.Registry.set
      (Obs.Registry.gauge o.registry "gc_major_collections")
      (float_of_int q.Stdlib.Gc.major_collections);
    Obs.Registry.set
      (Obs.Registry.gauge o.registry "gc_top_heap_words")
      (float_of_int q.Stdlib.Gc.top_heap_words);
    (match p.trace_out with
    | Some file ->
      write_json file
        (Obs.Trace_export.to_json ~meta:(trace_meta p) ~replicas:p.n o.spans);
      Printf.printf "trace written      %s (%d spans)\n" file
        (Obs.Span.count o.spans)
    | None -> ());
    (match p.registry_out with
    | Some file ->
      write_json file (Obs.Registry.to_json o.registry);
      Printf.printf "registry written   %s\n" file
    | None -> ());
    (match (o.journal, p.journal_out) with
    | Some j, Some file ->
      let oc = open_out file in
      output_string oc (Obs.Journal.to_jsonl j);
      close_out oc;
      Printf.printf "journal written    %s (%d events)\n" file
        (Obs.Journal.length j)
    | _ -> ());
    if p.span_dump then Format.printf "%a" Obs.Trace_export.pp_span_dump o.spans;
    (match Obs.divergence_series o with
    | [] -> ()
    | series ->
      Printf.printf "divergence series  %s\n"
        (String.concat " "
           (List.map (fun (t, d) -> Printf.sprintf "%.0f:%d" t d) series)));
    Format.printf "telemetry:@.%a" Obs.Registry.pp o.registry

(* One line per requested criterion, naming the first violating event's
   journal index and span id — the index `replay --until` accepts. *)
let print_monitor_report ~criteria ~events violations =
  List.iter
    (fun c ->
      match
        List.find_opt (fun v -> v.Obs.Monitor.criterion = c) violations
      with
      | Some v ->
        Format.printf "monitor %-10s %a@."
          (Obs.Monitor.criterion_name c)
          Obs.Monitor.pp_violation v
      | None ->
        Printf.printf "monitor %-10s clean (%d events)\n"
          (Obs.Monitor.criterion_name c)
          events)
    criteria

(* [interval] is the instance's effective cadence, read back from the
   functor instance after any --checkpoint-interval override. *)
let describe_log_core ~interval = function
  | `List -> "list"
  | `Array -> Printf.sprintf "array (checkpoint interval %d)" interval

let describe_metrics (m : Metrics.t) =
  Printf.printf
    "messages sent      %d\nbytes sent         %d\nupdates invoked    %d\nqueries invoked    %d\nops incomplete     %d\nreplay steps       %d\n"
    m.Metrics.messages_sent m.Metrics.bytes_sent m.Metrics.updates_invoked
    m.Metrics.queries_invoked m.Metrics.ops_incomplete m.Metrics.replay_steps

module type SET_PROTOCOL =
  Protocol.PROTOCOL
    with type update = Set_spec.update
     and type query = Set_spec.query
     and type output = Set_spec.output

(* The set drivers' workload: the explicit printed scripts when the
   params carry them (a replayed `shrink` journal), the generated
   conflict workload otherwise. *)
let set_workload_of_params p =
  match p.scripts with
  | Some printed ->
    if List.length printed <> p.n then
      failwith
        (Printf.sprintf "run: %d explicit scripts for n=%d processes"
           (List.length printed) p.n);
    Array.of_list
      (List.map
         (fun script ->
           List.map
             (fun tok ->
               match Workload.For_set.parse_op tok with
               | Some op -> op
               | None -> failwith (Printf.sprintf "run: bad script op %S" tok))
             script)
         printed)
  | None ->
    let rng = Prng.create p.seed in
    Workload.For_set.conflict ~rng ~n:p.n ~ops_per_process:p.ops ~domain:16
      ~skew:1.0 ~delete_ratio:0.3

let run_set ?note (module P : SET_PROTOCOL) p =
  let module R = Runner.Make (P) in
  let workload = set_workload_of_params p in
  let obs = obs_of_params p in
  let monitor =
    if p.monitors = [] then None
    else Some (R.Mon.create ~n:p.n ~criteria:p.monitors)
  in
  let base = R.default_config ~n:p.n ~seed:p.seed in
  let config =
    {
      base with
      R.delay = Network.Exponential { mean = p.mean_delay };
      fifo = p.fifo;
      partitions = p.partitions;
      crashes = p.crashes;
      churn = p.churn;
      final_read = Some Set_spec.Read;
      deadline = Option.value ~default:base.R.deadline p.duration;
      trace = p.spacetime;
      batch_window = p.batch_window;
      obs;
      probe_interval = p.probe_interval;
      monitor;
      sampler = p.sampler;
    }
  in
  let r = R.run config ~workload in
  (match r.R.trace with
  | Some tr ->
    (* Configuration notes sort to the top of the rendered chronology. *)
    Option.iter (fun text -> Trace.record_note tr ~time:0.0 text) note;
    print_string (Trace.render tr ~n:p.n)
  | None -> ());
  Printf.printf "protocol           %s (object: set)\n" P.protocol_name;
  describe_metrics r.R.metrics;
  Printf.printf "converged          %b\n" r.R.converged;
  List.iter
    (fun (pid, o) ->
      Format.printf "final read p%d      %a@." pid Set_spec.pp_output o)
    r.R.final_outputs;
  if p.check then begin
    let module C = Criteria.Make (Set_spec) in
    Printf.printf "history UC         %b\nhistory EC         %b\n"
      (C.holds Criteria.UC r.R.history)
      (C.holds Criteria.EC r.R.history)
  end;
  Option.iter
    (fun m ->
      print_monitor_report ~criteria:p.monitors ~events:(R.Mon.events_seen m)
        (R.Mon.violations m))
    monitor;
  emit_obs p obs

let run_counter (module P : Protocol.PROTOCOL
                  with type update = Counter_spec.update
                   and type query = Counter_spec.query
                   and type output = Counter_spec.output) p =
  let module R = Runner.Make (P) in
  let rng = Prng.create p.seed in
  let workload =
    Workload.For_counter.deposits_and_withdrawals ~rng ~n:p.n ~ops_per_process:p.ops
      ~max_amount:100
  in
  let obs = obs_of_params p in
  let monitor =
    if p.monitors = [] then None
    else Some (R.Mon.create ~n:p.n ~criteria:p.monitors)
  in
  let base = R.default_config ~n:p.n ~seed:p.seed in
  let config =
    {
      base with
      R.delay = Network.Exponential { mean = p.mean_delay };
      fifo = p.fifo;
      partitions = p.partitions;
      churn = p.churn;
      final_read = Some Counter_spec.Value;
      deadline = Option.value ~default:base.R.deadline p.duration;
      batch_window = p.batch_window;
      obs;
      probe_interval = p.probe_interval;
      monitor;
      sampler = p.sampler;
    }
  in
  let r = R.run config ~workload in
  Printf.printf "protocol           %s (object: counter)\n" P.protocol_name;
  describe_metrics r.R.metrics;
  Printf.printf "converged          %b\n" r.R.converged;
  List.iter (fun (pid, o) -> Printf.printf "final read p%d      %d\n" pid o) r.R.final_outputs;
  Option.iter
    (fun m ->
      print_monitor_report ~criteria:p.monitors ~events:(R.Mon.events_seen m)
        (R.Mon.violations m))
    monitor;
  emit_obs p obs

let run_register (module P : Protocol.PROTOCOL
                   with type update = Register_spec.update
                    and type query = Register_spec.query
                    and type output = Register_spec.output) p =
  let module R = Runner.Make (P) in
  let rng = Prng.create p.seed in
  let module G = Workload.Make (Register_spec) in
  let workload = G.mixed ~rng ~n:p.n ~ops_per_process:p.ops ~query_ratio:0.4 in
  let obs = obs_of_params p in
  let monitor =
    if p.monitors = [] then None
    else Some (R.Mon.create ~n:p.n ~criteria:p.monitors)
  in
  let base = R.default_config ~n:p.n ~seed:p.seed in
  let config =
    {
      base with
      R.delay = Network.Exponential { mean = p.mean_delay };
      fifo = p.fifo;
      partitions = p.partitions;
      churn = p.churn;
      final_read = Some Register_spec.Read;
      deadline = Option.value ~default:base.R.deadline p.duration;
      batch_window = p.batch_window;
      obs;
      probe_interval = p.probe_interval;
      monitor;
      sampler = p.sampler;
    }
  in
  let r = R.run config ~workload in
  Printf.printf "protocol           %s (object: register)\n" P.protocol_name;
  describe_metrics r.R.metrics;
  Printf.printf "converged          %b\n" r.R.converged;
  (match r.R.op_latencies with
  | [] -> ()
  | ls ->
    let s = Stats.summarize ls in
    Printf.printf "op latency         mean=%.2f p99=%.2f\n" s.Stats.mean s.Stats.p99);
  List.iter (fun (pid, o) -> Printf.printf "final read p%d      %d\n" pid o) r.R.final_outputs;
  Option.iter
    (fun m ->
      print_monitor_report ~criteria:p.monitors ~events:(R.Mon.events_seen m)
        (R.Mon.violations m))
    monitor;
  emit_obs p obs

let run_memory p =
  let module R = Runner.Make (Lww_memory) in
  let rng = Prng.create p.seed in
  let workload =
    Workload.For_memory.random_writes ~rng ~n:p.n ~ops_per_process:p.ops ~registers:8
      ~read_ratio:0.4
  in
  let obs = obs_of_params p in
  let monitor =
    if p.monitors = [] then None
    else Some (R.Mon.create ~n:p.n ~criteria:p.monitors)
  in
  let base = R.default_config ~n:p.n ~seed:p.seed in
  let config =
    {
      base with
      R.delay = Network.Exponential { mean = p.mean_delay };
      partitions = p.partitions;
      churn = p.churn;
      final_read = Some (Memory_spec.Read 0);
      deadline = Option.value ~default:base.R.deadline p.duration;
      batch_window = p.batch_window;
      obs;
      probe_interval = p.probe_interval;
      monitor;
      sampler = p.sampler;
    }
  in
  let r = R.run config ~workload in
  Printf.printf "protocol           lww-memory (object: memory)\n";
  describe_metrics r.R.metrics;
  Printf.printf "converged          %b\n" r.R.converged;
  Option.iter
    (fun m ->
      print_monitor_report ~criteria:p.monitors ~events:(R.Mon.events_seen m)
        (R.Mon.violations m))
    monitor;
  emit_obs p obs

(* The universal protocols are wrapped in {!Persist.Catchup} so a
   joining or rejoining replica really absorbs a donor snapshot (the
   bare functors carry the PROTOCOL stub [snapshot]/[absorb]). *)
module Uni_set_core = Generic.Make (Set_spec)
module Uni_set = Persist.Catchup (Uni_set_core) (Update_codec.For_set)
module Uni_list =
  Persist.Catchup (Generic_ref.Make (Set_spec)) (Update_codec.For_set)
module Memo_set = Memo.Make (Set_spec)
module Gc_set = Gc.Make (Set_spec)
module Undo_set = Undo.Make (Undoable.Set)
module Pipe_set = Pipelined.Make (Set_spec)
module Uni_counter_core = Generic.Make (Counter_spec)
module Uni_counter = Persist.Catchup (Uni_counter_core) (Update_codec.For_counter)
module Fast_counter = Commutative.Make (Counter_spec)
module Uni_reg =
  Persist.Catchup (Generic.Make (Register_spec)) (Update_codec.For_register)
module Sharded_set = Space.Make (Set_spec) (Update_codec.For_set)

(* The sharded object space on the set: one Algorithm 1 core per shard
   behind a consistent-hash ring, fed a Zipf-skewed multi-key stream.
   --shards 1 degenerates to a single core holding every key;
   --rebalance arms the hot-shard split policy. *)
let sharded_workload p =
  let rng = Prng.create p.seed in
  let elem = Zipf.create ~n:16 ~s:1.0 in
  Workload.For_space.zipf_scripts ~rng ~n:p.n ~ops_per_process:p.ops
    ~keys:p.keys ~skew:1.1 ~fanout:3 ~query_ratio:0.25
    ~update:(fun g ->
      let v = Zipf.sample elem g in
      if Prng.float g 1.0 < 0.3 then Set_spec.Delete v else Set_spec.Insert v)
    ~query:(fun _ -> Set_spec.Read)
    ~read:(fun k q -> Sharded_set.K.Read (k, q))

let run_sharded p =
  let module R = Runner.Make (Sharded_set) in
  let obs = obs_of_params p in
  let policy =
    Option.map
      (fun interval ->
        (* 1.5 keeps the trigger reachable at small shard counts: with
           two shards the hottest can never exceed 2x the mean, so a
           factor of 2 would never fire. *)
        { Sharded_set.interval; hot_factor = 1.5; max_shards = 64 })
      p.rebalance
  in
  let map = Sharded_set.create_map ?policy ?obs ~shards:p.shards () in
  Sharded_set.configure map;
  (* Soak runs also watch the ring: cumulative and per-tick op rates
     for every shard, so a hot-shard split shows up in the series. *)
  Option.iter
    (fun s -> Obs.Series.add_probe s (Sharded_set.series_probe map))
    p.sampler;
  let workload = sharded_workload p in
  let monitor =
    if p.monitors = [] then None
    else Some (R.Mon.create ~n:p.n ~criteria:p.monitors)
  in
  let base = R.default_config ~n:p.n ~seed:p.seed in
  let config =
    {
      base with
      R.delay = Network.Exponential { mean = p.mean_delay };
      fifo = p.fifo;
      partitions = p.partitions;
      crashes = p.crashes;
      churn = p.churn;
      final_read = Some Sharded_set.K.Sweep;
      deadline = Option.value ~default:base.R.deadline p.duration;
      batch_window = p.batch_window;
      obs;
      probe_interval = p.probe_interval;
      monitor;
      sampler = p.sampler;
    }
  in
  let r = R.run config ~workload in
  Printf.printf "protocol           %s (object: %s)\n"
    Sharded_set.protocol_name Sharded_set.name;
  Printf.printf "shards             %d initial, %d final (%d rebalances, %d \
                 entries re-homed)\n"
    p.shards
    (Ring.shards (Sharded_set.ring map))
    (Sharded_set.rebalances map)
    (Sharded_set.moved_entries map);
  Printf.printf "shard ops          %s\n"
    (String.concat " "
       (List.map
          (fun (s, ops) -> Printf.sprintf "s%d:%d" s ops)
          (Sharded_set.shard_ops map)));
  describe_metrics r.R.metrics;
  Printf.printf "converged          %b\n" r.R.converged;
  List.iter
    (fun (pid, o) ->
      Format.printf "final read p%d      %a@." pid Sharded_set.pp_output o)
    r.R.final_outputs;
  Option.iter
    (fun m ->
      print_monitor_report ~criteria:p.monitors ~events:(R.Mon.events_seen m)
        (R.Mon.violations m))
    monitor;
  emit_obs p obs

(* The set-object universal protocol, on whichever log core was asked
   for. Both cores exchange byte-identical messages, so the same seed
   replays the same schedule and only the query cost differs. *)
let run_universal_set p =
  let interval =
    match p.checkpoint_interval with
    | Some k ->
      Uni_set_core.checkpoint_interval := k;
      k
    | None -> !Uni_set_core.checkpoint_interval
  in
  let core = describe_log_core ~interval p.log_core in
  Printf.printf "log core           %s\n" core;
  let note = "log core: " ^ core in
  match p.log_core with
  | `Array -> run_set ~note (module Uni_set) p
  | `List -> run_set ~note (module Uni_list) p

(* Algorithm 1 on any registered object: generic over the packed ADT
   plus its wire codec, so every instance gets real churn catch-up. *)
let run_universal_on (module A : Registry.SPEC) p =
  let module G = Generic.Make (A) in
  let module P =
    (val (match p.log_core with
         | `Array ->
           Option.iter (fun k -> G.checkpoint_interval := k) p.checkpoint_interval;
           (module Persist.Catchup (G) (A.Codec) : Generic.S
             with type update = A.update
              and type query = A.query
              and type output = A.output
              and type state = A.state)
         | `List -> (module Persist.Catchup (Generic_ref.Make (A)) (A.Codec))))
  in
  let module R = Runner.Make (P) in
  let rng = Prng.create p.seed in
  let workload =
    Array.init p.n (fun _ ->
        List.init p.ops (fun _ ->
            if Prng.int rng 4 = 0 then Protocol.Invoke_query (A.random_query rng)
            else Protocol.Invoke_update (A.random_update rng)))
  in
  let obs = obs_of_params p in
  let monitor =
    if p.monitors = [] then None
    else Some (R.Mon.create ~n:p.n ~criteria:p.monitors)
  in
  let base = R.default_config ~n:p.n ~seed:p.seed in
  let config =
    {
      base with
      R.delay = Network.Exponential { mean = p.mean_delay };
      fifo = p.fifo;
      partitions = p.partitions;
      crashes = p.crashes;
      churn = p.churn;
      final_read = Some (A.random_query (Prng.create p.seed));
      deadline = Option.value ~default:base.R.deadline p.duration;
      batch_window = p.batch_window;
      obs;
      probe_interval = p.probe_interval;
      monitor;
      sampler = p.sampler;
    }
  in
  let r = R.run config ~workload in
  Printf.printf "protocol           universal (object: %s)\n" A.name;
  Printf.printf "log core           %s\n"
    (describe_log_core ~interval:!G.checkpoint_interval p.log_core);
  describe_metrics r.R.metrics;
  Printf.printf "converged          %b\n" r.R.converged;
  List.iter
    (fun (pid, o) -> Format.printf "final read p%d      %a@." pid A.pp_output o)
    r.R.final_outputs;
  Option.iter
    (fun m ->
      print_monitor_report ~criteria:p.monitors ~events:(R.Mon.events_seen m)
        (R.Mon.violations m))
    monitor;
  emit_obs p obs

let registry_protocols : (string * string * (run_params -> unit)) list =
  List.map
    (fun (name, spec) ->
      ( "universal-" ^ name,
        "Algorithm 1 on the " ^ name ^ " object",
        run_universal_on spec ))
    Registry.all_specs

let protocols : (string * string * (run_params -> unit)) list =
  registry_protocols
  @ [
    ("universal", "Algorithm 1 on the set", run_universal_set);
    ("memo", "Algorithm 1 + snapshot cache, set", run_set (module Memo_set));
    ("gc", "Algorithm 1 + stability GC, set (needs --fifo)", run_set (module Gc_set));
    ("undo", "undo-based construction, set", run_set (module Undo_set));
    ("pipelined", "naive FIFO apply-on-receive, set", run_set (module Pipe_set));
    ("orset", "OR-set CRDT", run_set (module Orset_crdt));
    ("2pset", "two-phase set CRDT", run_set (module Twopset_crdt.Protocol_impl));
    ("lwwset", "LWW-element-set CRDT", run_set (module Lwwset_crdt));
    ("pnset", "counting set CRDT", run_set (module Pnset_crdt));
    ("counter", "Algorithm 1 on the counter", run_counter (module Uni_counter));
    ("fastcounter", "CRDT fast path counter", run_counter (module Fast_counter));
    ("pncounter", "PN-counter CRDT", run_counter (module Counters.Pncounter));
    ("register", "Algorithm 1 on the register", run_register (module Uni_reg));
    ("lwwreg", "LWW-register CRDT", run_register (module Registers.Lwwreg));
    ("abd", "ABD linearizable register (baseline)", run_register (module Abd));
    ("lwwmemory", "Algorithm 2 shared memory", run_memory);
    ( "sharded",
      "Algorithm 1 per shard behind a consistent-hash ring, set \
       (--shards/--keys/--rebalance)",
      run_sharded );
  ]

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

open Cmdliner

(* `--monitor uc,ec,pc` — shared by `run` (and friends) and `bench`. *)
let monitors_conv =
  let parse s =
    let parts = List.filter (fun x -> x <> "") (String.split_on_char ',' s) in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: rest -> (
        match Obs.Monitor.criterion_of_name x with
        | Some c -> go (c :: acc) rest
        | None ->
          Error
            (`Msg
              (Printf.sprintf "unknown criterion %S (expected uc, ec or pc)" x)))
    in
    go [] parts
  in
  let print ppf cs =
    Format.pp_print_string ppf
      (String.concat "," (List.map Obs.Monitor.criterion_name cs))
  in
  Arg.conv (parse, print)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Root random seed.")

let figures_cmd =
  let doc = "Print the Figure 1 classification matrix and the Figure 2 analysis." in
  let run () =
    print_string (Table.render (Experiments.fig1 ()));
    print_newline ();
    print_string (Experiments.fig2 ())
  in
  Cmd.v (Cmd.info "figures" ~doc) Term.(const run $ const ())

let experiments_cmd =
  let doc = "Run the experiment suite (DESIGN.md ids; default: all)." in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids, e.g. C2 C4.")
  in
  let markdown_arg =
    Arg.(value & flag & info [ "markdown" ] ~doc:"Render GitHub-flavoured tables.")
  in
  let run seed markdown ids =
    let wanted = if ids = [] then experiment_ids else ids in
    let wanted = List.map String.uppercase_ascii wanted in
    List.iter
      (fun (id, title, body) ->
        if List.mem (String.uppercase_ascii id) wanted then
          if markdown then Printf.printf "## %s — %s\n\n%s\n" id title body
          else Printf.printf "== %s: %s ==\n%s\n" id title body)
      (Experiments.all ~markdown ~seed ())
  in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const run $ seed_arg $ markdown_arg $ ids)

let run_cmd =
  let doc = "Simulate one protocol on a generated conflict workload." in
  let protocol =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun (n, _, f) -> (n, (n, f))) protocols))) None
      & info [] ~docv:"PROTOCOL" ~doc:"One of the names shown by `ucsim list`.")
  in
  let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Processes.") in
  let ops_arg =
    Arg.(value & opt int 100 & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per process.")
  in
  let delay_arg =
    Arg.(value & opt float 10.0 & info [ "delay" ] ~docv:"D" ~doc:"Mean message delay.")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Initial shard count for the $(b,sharded) protocol: one \
             Algorithm 1 core per shard behind a consistent-hash ring. 1 \
             (the default) keeps every key in a single core.")
  in
  let keys_arg =
    Arg.(
      value & opt int 64
      & info [ "keys" ] ~docv:"K"
          ~doc:
            "Key domain of the sharded workload (Zipf-skewed; key 0 is the \
             hottest).")
  in
  let rebalance_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "rebalance" ] ~docv:"DT"
          ~doc:
            "Arm the hot-shard policy: every $(docv) simulated time units, \
             split the hottest shard when its op rate exceeds 2x the \
             per-shard mean (sharded protocol only).")
  in
  let fifo_arg = Arg.(value & flag & info [ "fifo" ] ~doc:"FIFO channels.") in
  let crash_arg =
    Arg.(value & flag & info [ "crash" ] ~doc:"Crash the last process at t=50.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Run the UC/EC checkers on the extracted history (small runs only).")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ] ~doc:"Print a space-time trace of the run (set protocols only).")
  in
  let log_core_arg =
    Arg.(
      value
      & opt (enum [ ("list", `List); ("array", `Array) ]) `Array
      & info [ "log-core" ] ~docv:"CORE"
          ~doc:
            "Op-log substrate for the universal protocols: the seed's cons-list \
             core or the array-backed oplog with interval checkpoints (default).")
  in
  let checkpoint_interval_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-interval" ] ~docv:"K"
          ~doc:
            "Record an oplog state checkpoint every K entries (universal \
             protocols on the array core; 0 disables checkpointing).")
  in
  let obs_arg =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:
            "Enable the telemetry layer: per-replica metric registry, causal \
             span tracing, replay-cost profiles. Off by default; runs without \
             it are bit-identical to the uninstrumented simulator.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the span trace as Chrome/Perfetto trace-event JSON to \
             $(docv) (implies --obs). Load it in ui.perfetto.dev.")
  in
  let registry_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "registry-out" ] ~docv:"FILE"
          ~doc:
            "Write the metric registry dump as JSON to $(docv) (implies \
             --obs). Render it later with `ucsim report`.")
  in
  let span_dump_arg =
    Arg.(
      value & flag
      & info [ "span-dump" ]
          ~doc:"Print the compact per-span dump (implies --obs).")
  in
  let probe_interval_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "probe-interval" ] ~docv:"DT"
          ~doc:
            "Sample every live replica's state fingerprint at most every \
             $(docv) simulated time units, recording the divergence series \
             and feeding visibility-latency accounting (implies --obs).")
  in
  let partition_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ from_s; to_s; group_s ] -> (
        match (float_of_string_opt from_s, float_of_string_opt to_s) with
        | Some from_time, Some to_time ->
          let members = String.split_on_char ',' group_s in
          let group = List.filter_map int_of_string_opt members in
          if List.length group <> List.length members || group = [] then
            Error (`Msg "partition: group must be a comma-separated pid list")
          else Ok { Network.from_time; to_time; group }
        | _ -> Error (`Msg "partition: FROM and TO must be numbers"))
      | _ -> Error (`Msg "partition: expected FROM:TO:P1,P2,...")
    in
    let print ppf (p : Network.partition) =
      Format.fprintf ppf "%g:%g:%s" p.Network.from_time p.Network.to_time
        (String.concat "," (List.map string_of_int p.Network.group))
    in
    Arg.conv (parse, print)
  in
  let partitions_arg =
    Arg.(
      value
      & opt_all partition_conv []
      & info [ "partition" ] ~docv:"FROM:TO:PIDS"
          ~doc:
            "Isolate the comma-separated pid group from everyone else between \
             simulated times FROM and TO (messages are delayed, not lost; the \
             partition heals at TO). Repeatable.")
  in
  let churn_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ t_s; action_s; pid_s ] -> (
        match
          ( float_of_string_opt t_s,
            Network.churn_action_of_name action_s,
            int_of_string_opt pid_s )
        with
        | Some time, Some action, Some pid -> Ok { Network.time; pid; action }
        | _ -> Error (`Msg "churn: expected TIME:join|leave|rejoin:PID"))
      | _ -> Error (`Msg "churn: expected TIME:ACTION:PID")
    in
    let print ppf (ce : Network.churn_event) =
      Format.fprintf ppf "%g:%s:%d" ce.Network.time
        (Network.churn_action_name ce.Network.action)
        ce.Network.pid
    in
    Arg.conv (parse, print)
  in
  let churn_arg =
    Arg.(
      value
      & opt_all churn_conv []
      & info [ "churn" ] ~docv:"TIME:ACTION:PID"
          ~doc:
            "Membership change at simulated time TIME: $(b,leave) detaches the \
             replica (its script parks, frames to and from it drop), \
             $(b,rejoin) re-attaches it with its crash-time state, and \
             $(b,join) declares a process that starts the run absent and \
             joins fresh — joiners and rejoiners catch up from a present \
             peer's snapshot when the protocol supports one. Repeatable.")
  in
  let batch_window_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "batch-window" ] ~docv:"W"
          ~doc:
            "Buffer each process's broadcasts and flush them as one frame per \
             destination $(docv) time units after the window opens.")
  in
  let journal_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-out" ] ~docv:"FILE"
          ~doc:
            "Record every invocation, wire frame, delivery, fault and probe \
             into a self-describing JSONL event journal at $(docv), sealed \
             with the run's history fingerprint (implies --obs). Re-execute \
             it with `ucsim replay`.")
  in
  let monitors_arg =
    Arg.(
      value
      & opt monitors_conv []
      & info [ "monitor" ] ~docv:"CRITERIA"
          ~doc:
            "Comma-separated consistency criteria (uc, ec, pc) to check \
             online as the run progresses; the first violating event is \
             reported with its journal index and span id (implies --obs).")
  in
  let run (name, f) seed n ops shards keys rebalance mean_delay fifo crash_one
      check spacetime log_core checkpoint_interval batch_window obs_on
      trace_out registry_out span_dump probe_interval partitions churn
      journal_out monitors =
    f
      {
        protocol = name;
        seed;
        n;
        ops;
        shards;
        keys;
        rebalance;
        mean_delay;
        fifo;
        crashes = (if crash_one then [ (50.0, n - 1) ] else []);
        check;
        spacetime;
        log_core;
        checkpoint_interval;
        batch_window;
        obs_on;
        trace_out;
        registry_out;
        span_dump;
        probe_interval;
        partitions;
        churn;
        scripts = None;
        journal_out;
        journal = None;
        monitors;
        obs = None;
        sample_interval = None;
        duration = None;
        rules = [];
        sampler = None;
      }
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ protocol $ seed_arg $ n_arg $ ops_arg $ shards_arg $ keys_arg
      $ rebalance_arg $ delay_arg $ fifo_arg $ crash_arg
      $ check_arg $ trace_arg $ log_core_arg $ checkpoint_interval_arg
      $ batch_window_arg $ obs_arg $ trace_out_arg $ registry_out_arg
      $ span_dump_arg $ probe_interval_arg $ partitions_arg $ churn_arg
      $ journal_out_arg $ monitors_arg)

let modelcheck_cmd =
  let doc =
    "Model-check a protocol: exhaustively by default, with partial-order \
     reduction, state deduplication, checkpointed replay and parallel domains \
     on request."
  in
  let which =
    let choices =
      [
        ("universal", `Universal);
        ("pipelined", `Pipelined);
        ("orset", `Orset);
        ("counter", `Counter);
      ]
    in
    Arg.(value & pos 0 (enum choices) `Universal & info [] ~docv:"PROTOCOL")
  in
  let por_arg =
    Arg.(value & flag & info [ "por" ] ~doc:"Enable sleep-set partial-order reduction.")
  in
  let dedup_arg =
    Arg.(
      value & flag
      & info [ "dedup" ]
          ~doc:
            "Enable state fingerprinting (universal and counter only — needs a \
             replica snapshot).")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"D" ~doc:"Explore first-level branches over D domains.")
  in
  let checkpoint_arg =
    Arg.(
      value & opt int 4
      & info [ "checkpoint" ] ~docv:"K"
          ~doc:
            "Snapshot protocol state every K events for O(K) backtracking (0 \
             disables; universal and counter only).")
  in
  let crashes_arg =
    Arg.(
      value & opt int 0
      & info [ "max-crashes" ] ~docv:"C" ~doc:"Also explore up to C process crashes.")
  in
  let limit_arg =
    Arg.(
      value & opt int 200_000
      & info [ "limit" ] ~docv:"L" ~doc:"Cap on complete executions.")
  in
  let n_arg =
    Arg.(
      value & opt int 2
      & info [ "n" ] ~docv:"N" ~doc:"Processes (counter protocol only).")
  in
  let ops_arg =
    Arg.(
      value & opt int 2
      & info [ "ops" ] ~docv:"OPS"
          ~doc:"Increments per process (counter protocol only).")
  in
  let log_core_arg =
    Arg.(
      value
      & opt (enum [ ("list", `List); ("array", `Array) ]) `Array
      & info [ "log-core" ] ~docv:"CORE"
          ~doc:
            "Op-log substrate for the universal protocols: the seed's cons-list \
             core or the array-backed oplog (default). Both cores must report \
             identical verdicts — the flag exists for exactly that A/B check.")
  in
  let checkpoint_interval_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-interval" ] ~docv:"K"
          ~doc:
            "Oplog state-checkpoint cadence inside the replicas (array core \
             only; distinct from --checkpoint, which snapshots whole replicas \
             for explorer backtracking).")
  in
  let run which por dedup domains checkpoint max_crashes limit n ops log_core
      checkpoint_interval =
    let race =
      [|
        [ Protocol.Invoke_update (Set_spec.Insert 1); Protocol.Invoke_update (Set_spec.Delete 2) ];
        [ Protocol.Invoke_update (Set_spec.Insert 2); Protocol.Invoke_update (Set_spec.Delete 1) ];
      |]
    in
    let print_report name executions exhaustive failures distinct firsts
        (st : Explore.stats) =
      Printf.printf "protocol       %s\nschedules      %d (exhaustive: %b)\n" name
        executions exhaustive;
      Printf.printf
        "states         explored %d, pruned(por) %d, deduped %d\nreplay         %d protocol steps, %d checkpoint restores\n"
        st.Explore.states_explored st.Explore.states_pruned_por
        st.Explore.states_deduped st.Explore.protocol_steps
        st.Explore.checkpoint_restores;
      List.iter
        (fun (c, k) ->
          Printf.printf "%-4s fails    %d (distinct histories: %d)\n"
            (Criteria.name c) k
            (try List.assoc c distinct with Not_found -> 0))
        failures;
      List.iter
        (fun (c, text) ->
          Printf.printf "first %s violation:\n%s\n" (Criteria.name c) text)
        firsts
    in
    let checkpoint_every = if checkpoint > 0 then checkpoint else 4 in
    match which with
    | `Universal -> (
      match log_core with
      | `Array ->
        Option.iter (fun k -> Uni_set_core.checkpoint_interval := k) checkpoint_interval;
        let module M = Model_check.Make (Uni_set) in
        let module S = Snapshot.For_generic (Set_spec) (Update_codec.For_set) in
        let snapshot = if checkpoint > 0 || dedup then Some S.snapshotter else None in
        let r =
          M.explore ~limit ~max_crashes ~por ~dedup ~checkpoint_every ?snapshot
            ~deliveries_commute:S.deliveries_commute ~domains ~scripts:race
            ~final_read:Set_spec.Read ()
        in
        print_report
          (Printf.sprintf "universal [log core: %s]"
             (describe_log_core ~interval:!Uni_set_core.checkpoint_interval `Array))
          r.M.executions r.M.exhaustive r.M.failures r.M.distinct_failures
          r.M.first_failures r.M.stats
      | `List ->
        let module M = Model_check.Make (Uni_list) in
        let module S =
          Snapshot.For_replica (Set_spec) (Update_codec.For_set) (Uni_list)
        in
        let snapshot = if checkpoint > 0 || dedup then Some S.snapshotter else None in
        let r =
          M.explore ~limit ~max_crashes ~por ~dedup ~checkpoint_every ?snapshot
            ~deliveries_commute:S.deliveries_commute ~domains ~scripts:race
            ~final_read:Set_spec.Read ()
        in
        print_report "universal [log core: list]" r.M.executions r.M.exhaustive
          r.M.failures r.M.distinct_failures r.M.first_failures r.M.stats)
    | `Pipelined ->
      if dedup then begin
        Printf.eprintf "modelcheck: --dedup needs a replica snapshot (universal/counter only)\n";
        exit 1
      end;
      let module M = Model_check.Make (Pipe_set) in
      let r =
        M.explore ~limit ~max_crashes ~por ~domains ~scripts:race
          ~final_read:Set_spec.Read ()
      in
      print_report "pipelined" r.M.executions r.M.exhaustive r.M.failures
        r.M.distinct_failures r.M.first_failures r.M.stats
    | `Orset ->
      if dedup then begin
        Printf.eprintf "modelcheck: --dedup needs a replica snapshot (universal/counter only)\n";
        exit 1
      end;
      let module M = Model_check.Make (Orset_crdt) in
      let r =
        M.explore ~limit ~max_crashes ~por ~domains ~scripts:race
          ~final_read:Set_spec.Read ()
      in
      print_report "or-set" r.M.executions r.M.exhaustive r.M.failures
        r.M.distinct_failures r.M.first_failures r.M.stats
    | `Counter ->
      let scripts =
        Array.init n (fun pid ->
            List.init ops (fun i ->
                Protocol.Invoke_update (Counter_spec.Add ((pid * ops) + i + 1))))
      in
      let explore_counter (type t m)
          (module G : Generic.S
            with type update = Counter_spec.update
             and type query = Counter_spec.query
             and type output = Counter_spec.output
             and type state = Counter_spec.state
             and type t = t
             and type message = m) core_label =
        let module M = Model_check.Make (G) in
        let module S =
          Snapshot.For_replica (Counter_spec) (Update_codec.For_counter) (G)
        in
        let snapshot = if checkpoint > 0 || dedup then Some S.snapshotter else None in
        let state_key = if dedup then Some S.commutative_key else None in
        let message_key = if dedup then Some S.commutative_message_key else None in
        let r =
          M.explore ~limit ~max_crashes ~por ~dedup ~checkpoint_every ?snapshot
            ?state_key ?message_key ~deliveries_commute:S.deliveries_commute
            ~domains ~scripts ~final_read:Counter_spec.Value ()
        in
        print_report
          (Printf.sprintf "universal counter (n=%d, ops=%d) [log core: %s]" n ops
             core_label)
          r.M.executions r.M.exhaustive r.M.failures r.M.distinct_failures
          r.M.first_failures r.M.stats
      in
      (match log_core with
      | `Array ->
        Option.iter
          (fun k -> Uni_counter_core.checkpoint_interval := k)
          checkpoint_interval;
        explore_counter
          (module Uni_counter)
          (describe_log_core ~interval:!Uni_counter_core.checkpoint_interval `Array)
      | `List ->
        let module L = Generic_ref.Make (Counter_spec) in
        explore_counter (module L) "list")
  in
  Cmd.v (Cmd.info "modelcheck" ~doc)
    Term.(
      const run $ which $ por_arg $ dedup_arg $ domains_arg $ checkpoint_arg
      $ crashes_arg $ limit_arg $ n_arg $ ops_arg $ log_core_arg
      $ checkpoint_interval_arg)

let nemesis_cmd =
  let doc = "Run a randomized fault campaign (crashes + healing partitions)." in
  let which =
    let choices =
      [
        ("universal", `Universal);
        ("memo", `Memo);
        ("gc", `Gc);
        ("undo", `Undo);
        ("orset", `Orset);
        ("pipelined", `Pipelined);
      ]
    in
    Arg.(value & pos 0 (enum choices) `Universal & info [] ~docv:"PROTOCOL")
  in
  let runs_arg =
    Arg.(value & opt int 50 & info [ "runs" ] ~docv:"N" ~doc:"Campaign size.")
  in
  let set_workload rng ~n ~ops =
    Workload.For_set.conflict ~rng ~n ~ops_per_process:ops ~domain:8 ~skew:1.0
      ~delete_ratio:0.35
  in
  let campaign_of (module P : SET_PROTOCOL) ~fifo ~runs ~seed =
    let module N = Nemesis.Make (P) in
    let campaign = { N.default_campaign with N.runs; fifo; base_seed = seed } in
    let v = N.run campaign ~workload:set_workload ~final_read:Set_spec.Read in
    Printf.printf
      "protocol %s: %d runs, %d crashes (budget %d/run%s), %d partitions\nconvergence failures       %d\nstalled operations         %d\ncertificate disagreements  %d\nverdict                    %s\n"
      P.protocol_name v.N.runs v.N.crashes_injected v.N.crash_cap
      (if v.N.capped_runs > 0 then
         Printf.sprintf ", clamped below the request in %d runs" v.N.capped_runs
       else "")
      v.N.partitions_injected v.N.convergence_failures v.N.stalled_operations
      v.N.certificate_disagreements
      (if N.clean v then "CLEAN" else "FAULTY");
    if v.N.failing_seeds <> [] then
      Printf.printf "failing seeds: %s\n"
        (String.concat ", " (List.map string_of_int v.N.failing_seeds))
  in
  let run which seed runs =
    match which with
    | `Universal -> campaign_of (module Uni_set) ~fifo:false ~runs ~seed
    | `Memo -> campaign_of (module Memo_set) ~fifo:false ~runs ~seed
    | `Gc -> campaign_of (module Gc_set) ~fifo:true ~runs ~seed
    | `Undo -> campaign_of (module Undo_set) ~fifo:false ~runs ~seed
    | `Orset -> campaign_of (module Orset_crdt) ~fifo:false ~runs ~seed
    | `Pipelined -> campaign_of (module Pipe_set) ~fifo:false ~runs ~seed
  in
  Cmd.v (Cmd.info "nemesis" ~doc) Term.(const run $ which $ seed_arg $ runs_arg)

let read_file file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* Parse a journal file, dying with a one-line diagnostic on anything
   malformed or truncated — same contract as `report`. *)
let load_journal ~cmd file =
  match Obs.Journal.of_jsonl (read_file file) with
  | exception Obs.Journal.Parse_error msg ->
    Printf.eprintf "%s: %s: %s\n" cmd file msg;
    exit 1
  | exception Failure msg ->
    Printf.eprintf "%s: %s: %s\n" cmd file msg;
    exit 1
  | j -> j

let storm_cmd =
  let doc =
    "Drive a flash crowd at a replicated set: open-loop arrivals (warm-up, \
     spike, cool-down) on top of the closed-loop clients, with per-operation \
     latency judged against an SLO target."
  in
  let which =
    let choices =
      [
        ("universal", `Universal);
        ("memo", `Memo);
        ("orset", `Orset);
        ("pipelined", `Pipelined);
        ("lwwset", `Lwwset);
      ]
    in
    Arg.(value & pos 0 (enum choices) `Universal & info [] ~docv:"PROTOCOL")
  in
  let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Replicas.") in
  let clients_arg =
    Arg.(value & opt int 6 & info [ "clients" ] ~docv:"C" ~doc:"Closed-loop clients.")
  in
  let ops_arg =
    Arg.(
      value & opt int 20
      & info [ "ops" ] ~docv:"OPS" ~doc:"Closed-loop operations per client.")
  in
  let delay_arg =
    Arg.(
      value & opt float 10.0
      & info [ "delay" ] ~docv:"D" ~doc:"Mean replica-mesh message delay.")
  in
  let base_arg =
    Arg.(
      value & opt float 0.2
      & info [ "base" ] ~docv:"R"
          ~doc:"Background arrival rate (operations per time unit).")
  in
  let peak_arg =
    Arg.(
      value & opt float 4.0
      & info [ "peak" ] ~docv:"R" ~doc:"Arrival rate during the spike.")
  in
  let warm_arg =
    Arg.(
      value & opt float 60.0
      & info [ "warm" ] ~docv:"T" ~doc:"Warm-up duration at the base rate.")
  in
  let spike_arg =
    Arg.(
      value & opt float 40.0
      & info [ "spike" ] ~docv:"T" ~doc:"Spike duration at the peak rate.")
  in
  let cool_arg =
    Arg.(
      value & opt float 60.0
      & info [ "cool" ] ~docv:"T" ~doc:"Cool-down duration at the base rate.")
  in
  let slo_arg =
    Arg.(
      value & opt float 40.0
      & info [ "slo" ] ~docv:"L"
          ~doc:
            "Latency target: the SLO is met when the open-loop p99 is at or \
             under $(docv) simulated time units.")
  in
  let query_ratio_arg =
    Arg.(
      value & opt float 0.25
      & info [ "query-ratio" ] ~docv:"Q"
          ~doc:"Fraction of open-loop arrivals that are reads.")
  in
  let registry_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "registry-out" ] ~docv:"FILE"
          ~doc:
            "Write the metric registry (including the open-loop latency \
             histogram) as JSON to $(docv).")
  in
  let run which seed n clients ops delay base peak warm spike cool slo
      query_ratio registry_out =
    let go (module P : SET_PROTOCOL) =
      let module C = Clients.Make (P) in
      let rng = Prng.create seed in
      let workload =
        Workload.For_set.conflict ~rng ~n:clients ~ops_per_process:ops
          ~domain:16 ~skew:1.0 ~delete_ratio:0.3
      in
      let obs = if registry_out <> None then Some (Obs.create ()) else None in
      let plan = Workload.Flash_crowd.plan ~base ~peak ~warm ~spike ~cool in
      let config =
        {
          (C.default_config ~n_replicas:n ~n_clients:clients ~seed) with
          C.replica_delay = Network.Exponential { mean = delay };
          final_read = Some Set_spec.Read;
          open_loop =
            Some
              {
                C.plan;
                mix =
                  (let one =
                     Workload.Flash_crowd.set_mix ~domain:16 ~skew:1.0
                       ~delete_ratio:0.3 ~query_ratio
                   in
                   fun g -> [ one g ]);
              };
          obs;
        }
      in
      let r = C.run config ~workload in
      Printf.printf "protocol           %s (object: set)\n" P.protocol_name;
      Printf.printf "replicas/clients   %d/%d\n" n clients;
      Printf.printf "arrival plan       %s\n"
        (String.concat " | "
           (List.map
              (fun (ph : Clients.phase) ->
                Printf.sprintf "%g/t for %g" ph.Clients.rate ph.Clients.duration)
              plan));
      Printf.printf "closed loop        %d completed, %d retried, %d failovers\n"
        r.C.ops_completed r.C.ops_abandoned r.C.failovers;
      Printf.printf "open loop          %d completed, %d abandoned\n"
        r.C.open_completed r.C.open_abandoned;
      Printf.printf "converged          %b\n" r.C.converged;
      (match r.C.open_latencies with
      | [] -> print_endline "open-loop SLO      no arrivals"
      | ls ->
        Format.printf "open-loop SLO      %a@." Stats.pp_slo (Stats.slo ~target:slo ls));
      match (obs, registry_out) with
      | Some o, Some file ->
        Obs.finalize o ~live:[];
        write_json file (Obs.Registry.to_json o.Obs.registry);
        Printf.printf "registry written   %s\n" file
      | _ -> ()
    in
    match which with
    | `Universal -> go (module Uni_set)
    | `Memo -> go (module Memo_set)
    | `Orset -> go (module Orset_crdt)
    | `Pipelined -> go (module Pipe_set)
    | `Lwwset -> go (module Lwwset_crdt)
  in
  Cmd.v (Cmd.info "storm" ~doc)
    Term.(
      const run $ which $ seed_arg $ n_arg $ clients_arg $ ops_arg $ delay_arg
      $ base_arg $ peak_arg $ warm_arg $ spike_arg $ cool_arg $ slo_arg
      $ query_ratio_arg $ registry_out_arg)

(* The protocols `shrink` can rebuild a Scenario for: the set protocols
   whose `run` driver goes through {!run_set}, so a minimized journal's
   explicit scripts replay through the stock driver. *)
let set_scenario_protocol p : (module SET_PROTOCOL) option =
  match p.protocol with
  | "universal" -> (
    Option.iter (fun k -> Uni_set_core.checkpoint_interval := k) p.checkpoint_interval;
    match p.log_core with
    | `Array -> Some (module Uni_set)
    | `List -> Some (module Uni_list))
  | "memo" -> Some (module Memo_set)
  | "gc" -> Some (module Gc_set)
  | "undo" -> Some (module Undo_set)
  | "pipelined" -> Some (module Pipe_set)
  | "orset" -> Some (module Orset_crdt)
  | "2pset" -> Some (module Twopset_crdt.Protocol_impl)
  | "lwwset" -> Some (module Lwwset_crdt)
  | "pnset" -> Some (module Pnset_crdt)
  | _ -> None

let shrink_cmd =
  let doc =
    "Minimize a monitor-flagged journaled run (from `run --journal-out`) to \
     a smallest scenario that still violates the same criterion, and write \
     the minimized journal — itself replayable with `ucsim replay`."
  in
  let in_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "journal-in" ] ~docv:"FILE" ~doc:"Journal of the flagged run.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-out" ] ~docv:"FILE"
          ~doc:"Write the minimized violating journal to $(docv).")
  in
  let max_runs_arg =
    Arg.(
      value & opt int 400
      & info [ "max-runs" ] ~docv:"N"
          ~doc:"Re-execution budget for the greedy descent.")
  in
  let run file out max_runs =
    let recorded = load_journal ~cmd:"shrink" file in
    let p =
      match
        params_of_header ~journal:(Obs.Journal.create ())
          (Obs.Journal.header recorded)
      with
      | exception Failure msg ->
        Printf.eprintf "shrink: %s: %s\n" file msg;
        exit 1
      | p -> { p with journal = None }
    in
    if p.batch_window <> None || p.probe_interval <> None then begin
      Printf.eprintf
        "shrink: runs recorded with --batch-window or --probe-interval are \
         not shrinkable (the scenario engine re-executes without them)\n";
      exit 1
    end;
    let (module P : SET_PROTOCOL) =
      match set_scenario_protocol p with
      | Some m -> m
      | None ->
        Printf.eprintf
          "shrink: protocol %S has no scenario engine (set protocols only)\n"
          p.protocol;
        exit 1
    in
    let module S = Scenario.Make (P) in
    let scripts =
      match set_workload_of_params p with
      | exception Failure msg ->
        Printf.eprintf "shrink: %s\n" msg;
        exit 1
      | w -> w
    in
    let scenario =
      {
        S.seed = p.seed;
        n = p.n;
        mean_delay = p.mean_delay;
        fifo = p.fifo;
        scripts;
        partitions = p.partitions;
        crashes = p.crashes;
        churn = p.churn;
        final_read = Some Set_spec.Read;
      }
    in
    let criteria =
      if p.monitors = [] then [ Obs.Monitor.Uc; Obs.Monitor.Ec; Obs.Monitor.Pc ]
      else p.monitors
    in
    Format.printf "scenario           %a@." S.pp scenario;
    match S.shrink ~max_runs ~criteria scenario with
    | None ->
      Printf.eprintf
        "shrink: run is clean — no %s violation to minimize\n"
        (String.concat "/" (List.map Obs.Monitor.criterion_name criteria));
      exit 1
    | Some { S.scenario = m; outcome; runs } ->
      let v =
        match outcome.S.violation with Some v -> v | None -> assert false
      in
      Format.printf "violation          %a@." Obs.Monitor.pp_violation v;
      Printf.printf "minimized          %d -> %d events (%d re-executions)\n"
        (Obs.Journal.length recorded)
        outcome.S.events runs;
      Format.printf "scenario (min)     %a@." S.pp m;
      (match out with
      | None -> ()
      | Some out_file ->
        let printed =
          Array.to_list (Array.map (List.map Workload.For_set.print_op) m.S.scripts)
        in
        let min_params =
          {
            p with
            n = m.S.n;
            mean_delay = m.S.mean_delay;
            fifo = m.S.fifo;
            crashes = m.S.crashes;
            partitions = m.S.partitions;
            churn = m.S.churn;
            scripts = Some printed;
            monitors = [ v.Obs.Monitor.criterion ];
            journal_out = Some out_file;
          }
        in
        Obs.Journal.set_header outcome.S.journal (journal_header min_params);
        let oc = open_out out_file in
        output_string oc (Obs.Journal.to_jsonl outcome.S.journal);
        close_out oc;
        Printf.printf "journal written    %s (%d events)\n" out_file
          outcome.S.events)
  in
  Cmd.v (Cmd.info "shrink" ~doc) Term.(const run $ in_arg $ out_arg $ max_runs_arg)

let classify_cmd =
  let doc =
    "Classify a hand-written set history against every consistency criterion."
  in
  let history_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"HISTORY"
          ~doc:
            (Printf.sprintf
               "Events I(v), D(v), R{…} (append w for an ω read); processes \
                separated by '/'. Example: \"%s\"."
               Parse_history.example))
  in
  let witnesses_arg =
    Arg.(value & flag & info [ "witness" ] ~doc:"Also print the UC/PC witnesses found.")
  in
  let run text witnesses =
    match Parse_history.parse text with
    | exception Parse_history.Parse_error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 1
    | h ->
      Format.printf "%a"
        (History.pp Set_spec.pp_update Set_spec.pp_query Set_spec.pp_output)
        h;
      let module C = Criteria.Make (Set_spec) in
      List.iter
        (fun (c, ok) ->
          Printf.printf "  %-5s %s\n" (Criteria.name c) (if ok then "yes" else "no"))
        (C.classify h);
      if witnesses then begin
        let module Uc = Check_uc.Make (Set_spec) in
        (match Uc.witness h with
        | Some updates ->
          Format.printf "UC linearization: %a@."
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf " · ")
               Set_spec.pp_update)
            updates
        | None -> ());
        let module Pc = Check_pc.Make (Set_spec) in
        match Pc.witness h with
        | Some ws ->
          Array.iteri
            (fun p w ->
              Format.printf "PC word for p%d: " p;
              List.iter
                (fun (e : _ History.event) ->
                  Format.printf "%a·"
                    (Uqadt.pp_operation Set_spec.pp_update Set_spec.pp_query
                       Set_spec.pp_output)
                    e.History.label)
                w;
              Format.printf "@.")
            ws
        | None -> ()
      end
  in
  Cmd.v (Cmd.info "classify" ~doc) Term.(const run $ history_arg $ witnesses_arg)

let soak_cmd =
  let doc =
    "Long-horizon soak run: stream time-series telemetry — registry \
     snapshots, per-replica log and checkpoint gauges, engine queue depth, \
     per-shard op rates, sliding-window latency percentiles — on a \
     simulated-time cadence, evaluate declarative alert rules over the \
     series each tick, and exit non-zero if any rule fires."
  in
  let protocol =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun (n, _, f) -> (n, (n, f))) protocols))) None
      & info [] ~docv:"PROTOCOL" ~doc:"One of the names shown by `ucsim list`.")
  in
  let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Processes.") in
  let ops_arg =
    Arg.(
      value & opt int 500
      & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per process.")
  in
  let delay_arg =
    Arg.(value & opt float 10.0 & info [ "delay" ] ~docv:"D" ~doc:"Mean message delay.")
  in
  let fifo_arg = Arg.(value & flag & info [ "fifo" ] ~doc:"FIFO channels.") in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"S"
          ~doc:"Initial shard count (sharded protocol only).")
  in
  let keys_arg =
    Arg.(
      value & opt int 64
      & info [ "keys" ] ~docv:"K"
          ~doc:"Key domain of the sharded workload.")
  in
  let rebalance_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "rebalance" ] ~docv:"DT"
          ~doc:"Arm the hot-shard split policy (sharded protocol only).")
  in
  let churn_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ t_s; action_s; pid_s ] -> (
        match
          ( float_of_string_opt t_s,
            Network.churn_action_of_name action_s,
            int_of_string_opt pid_s )
        with
        | Some time, Some action, Some pid -> Ok { Network.time; pid; action }
        | _ -> Error (`Msg "churn: expected TIME:join|leave|rejoin:PID"))
      | _ -> Error (`Msg "churn: expected TIME:ACTION:PID")
    in
    let print ppf (ce : Network.churn_event) =
      Format.fprintf ppf "%g:%s:%d" ce.Network.time
        (Network.churn_action_name ce.Network.action)
        ce.Network.pid
    in
    Arg.conv (parse, print)
  in
  let churn_arg =
    Arg.(
      value
      & opt_all churn_conv []
      & info [ "churn" ] ~docv:"TIME:ACTION:PID"
          ~doc:"Membership change schedule, as in `ucsim run`. Repeatable.")
  in
  let duration_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "duration" ] ~docv:"T"
          ~doc:
            "Hard horizon in simulated time: the run stops at $(docv) even \
             with script left (the default horizon is the runner's 1e7 \
             deadline).")
  in
  let sample_interval_arg =
    Arg.(
      value & opt float 50.0
      & info [ "sample-interval" ] ~docv:"DT"
          ~doc:
            "Simulated time between samples. Samples piggyback on existing \
             deliveries and completions — the sampler never schedules engine \
             events, so the schedule is identical with or without it.")
  in
  let series_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "series-out" ] ~docv:"FILE"
          ~doc:
            "Stream every sample (full resolution) and alert firing as JSONL \
             to $(docv); render it later with `ucsim report --series`.")
  in
  let rule_conv =
    let parse s =
      match Obs.Alert.rule_of_string s with
      | r -> Ok r
      | exception Invalid_argument msg -> Error (`Msg msg)
    in
    let print ppf r = Format.pp_print_string ppf (Obs.Alert.rule_to_string r) in
    Arg.conv (parse, print)
  in
  let rules_arg =
    Arg.(
      value
      & opt_all rule_conv []
      & info [ "rule" ] ~docv:"RULE"
          ~doc:
            "Alert rule over the sampled series: $(b,above:SERIES:V), \
             $(b,below:SERIES:V), $(b,growth:SERIES:K) (the last K retained \
             points strictly increasing — the unbounded-growth detector), or \
             $(b,slo:SERIES:TARGET). A rule addresses every labeled series \
             of that name, fires at most once, and is journaled as an Alert \
             event. Repeatable.")
  in
  let journal_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-out" ] ~docv:"FILE"
          ~doc:
            "Record the run (with its soak header and Alert events) as a \
             JSONL journal; `ucsim replay` reproduces the alert stream.")
  in
  let registry_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "registry-out" ] ~docv:"FILE"
          ~doc:"Write the end-of-run metric registry dump as JSON.")
  in
  let run (name, f) seed n ops shards keys rebalance mean_delay fifo churn
      duration sample_interval series_out rules journal_out registry_out =
    let journal = Option.map (fun _ -> Obs.Journal.create ()) journal_out in
    (* The bundle exists up front (unlike `run`, where obs_of_params
       decides) so the sampler can snapshot its registry every tick. *)
    let o = Obs.create ?journal () in
    let sampler =
      Obs.Series.sampler ~interval:sample_interval ~registry:o.Obs.registry ()
    in
    let writer =
      Option.map
        (fun file ->
          let oc = open_out file in
          let w =
            Obs.Series.writer oc
              ~meta:
                [
                  ("protocol", Obs.Json.Str name);
                  ("seed", Obs.Json.Num (float_of_int seed));
                  ("n", Obs.Json.Num (float_of_int n));
                  ("sample_interval", Obs.Json.Num sample_interval);
                ]
          in
          (file, oc, w))
        series_out
    in
    Option.iter
      (fun (_, _, w) -> Obs.Series.set_sink sampler (Obs.Series.write_point w))
      writer;
    let alerts = Obs.Alert.create rules in
    Obs.Alert.attach alerts sampler ~on_fire:(fun fr ->
        let rule = Obs.Alert.rule_to_string fr.Obs.Alert.rule in
        Printf.printf "ALERT              %s at t=%g on %s (value %g)\n" rule
          fr.Obs.Alert.time fr.Obs.Alert.series fr.Obs.Alert.value;
        Option.iter
          (fun j ->
            Obs.Journal.record j
              (Obs.Journal.Alert
                 {
                   time = fr.Obs.Alert.time;
                   rule;
                   series = fr.Obs.Alert.series;
                   value = fr.Obs.Alert.value;
                 }))
          journal;
        Option.iter
          (fun (_, _, w) ->
            Obs.Series.write_alert w ~time:fr.Obs.Alert.time ~rule
              ~series:fr.Obs.Alert.series ~value:fr.Obs.Alert.value)
          writer);
    f
      {
        protocol = name;
        seed;
        n;
        ops;
        shards;
        keys;
        rebalance;
        mean_delay;
        fifo;
        crashes = [];
        check = false;
        spacetime = false;
        log_core = `Array;
        checkpoint_interval = None;
        batch_window = None;
        obs_on = false;
        trace_out = None;
        registry_out;
        span_dump = false;
        probe_interval = None;
        partitions = [];
        churn;
        scripts = None;
        journal_out;
        journal;
        monitors = [];
        obs = Some o;
        sample_interval = Some sample_interval;
        duration;
        rules;
        sampler = Some sampler;
      };
    Printf.printf "samples            %d ticks, %d series\n"
      (Obs.Series.ticks sampler)
      (List.length (Obs.Series.list (Obs.Series.store sampler)));
    (match writer with
    | Some (file, oc, w) ->
      Obs.Series.close_writer w;
      close_out oc;
      Printf.printf "series written     %s\n" file
    | None -> ());
    match Obs.Alert.fired alerts with
    | [] ->
      Printf.printf "alerts             none fired (%d armed)\n"
        (List.length rules)
    | fired ->
      Printf.printf "alerts             %d fired (of %d armed)\n"
        (List.length fired) (List.length rules);
      exit 1
  in
  Cmd.v (Cmd.info "soak" ~doc)
    Term.(
      const run $ protocol $ seed_arg $ n_arg $ ops_arg $ shards_arg $ keys_arg
      $ rebalance_arg $ delay_arg $ fifo_arg $ churn_arg $ duration_arg
      $ sample_interval_arg $ series_out_arg $ rules_arg $ journal_out_arg
      $ registry_out_arg)

let report_cmd =
  let doc =
    "Render one or more telemetry registry dumps (from `run \
     --registry-out`) as a single merged table, or, with $(b,--series), a \
     soak series stream (from `soak --series-out`) as sparklines."
  in
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "Registry dump JSON file(s) — several are merged into one table \
             (counters add, gauges take the max, histograms combine on \
             their buckets) — or exactly one series JSONL file with \
             $(b,--series).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Re-emit the (merged) dump as canonical (sorted, pretty) JSON \
             instead of a table (registry dumps only).")
  in
  let series_arg =
    Arg.(
      value & flag
      & info [ "series" ]
          ~doc:
            "Treat FILE as a soak series stream: render one sparkline with \
             min/max/last per series, then any fired alerts.")
  in
  let run files json series =
    if series then begin
      match files with
      | [ file ] -> (
        match Obs.Series.load file with
        | exception Failure msg ->
          Printf.eprintf "report: %s\n" msg;
          exit 1
        | loaded -> Format.printf "%a" Obs.Series.render loaded)
      | _ ->
        Printf.eprintf "report: --series takes exactly one file\n";
        exit 1
    end
    else begin
      let load file =
        let contents =
          let ic = open_in_bin file in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          s
        in
        match Obs.Registry.rows_of_json (Obs.Json.of_string contents) with
        | exception Obs.Json.Parse_error msg ->
          Printf.eprintf "report: %s is not JSON: %s\n" file msg;
          exit 1
        | exception Failure msg ->
          Printf.eprintf "report: %s: %s\n" file msg;
          exit 1
        | rows -> rows
      in
      match Obs.Registry.merge_rows (List.map load files) with
      | exception Failure msg ->
        Printf.eprintf "report: %s\n" msg;
        exit 1
      | rows ->
        if json then
          print_endline
            (Obs.Json.to_string ~pretty:true (Obs.Registry.rows_to_json rows))
        else Format.printf "%a" Obs.Registry.pp_rows rows
    end
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const run $ files_arg $ json_arg $ series_arg)

(* Replay a flight-recorder journal (from `bench --journal-out`): the
   header names the spec and the workload seed, the scripts are
   regenerated (they are pure functions of the seed), and the recorded
   per-replica delivery order is re-executed on the sequential core —
   fingerprint equality is Proposition 4 checked end to end. Always a
   full replay; --until then prints the named event. *)
let replay_parallel_journal ~file recorded until =
  let header = Obs.Journal.header recorded in
  let str k =
    match List.assoc_opt k header with
    | Some (Obs.Json.Str s) -> s
    | _ ->
      Printf.eprintf "replay: %s: parallel journal header lacks %S\n" file k;
      exit 1
  in
  let num k =
    match List.assoc_opt k header with
    | Some (Obs.Json.Num f) -> f
    | _ ->
      Printf.eprintf "replay: %s: parallel journal header lacks %S\n" file k;
      exit 1
  in
  let spec = str "spec" in
  let seed = int_of_float (num "seed") in
  let domains = int_of_float (num "domains") in
  let ops = int_of_float (num "ops") in
  let query_ratio = num "query_ratio" in
  let zipf = num "zipf" in
  Printf.printf
    "replaying          parallel %s (seed %d, %d domains, %d events recorded)\n"
    spec seed domains
    (Obs.Journal.length recorded);
  let outcome =
    if spec = "set" && zipf > 0.0 then begin
      let module B = Throughput.Bench (Set_spec) in
      let scripts =
        Throughput.set_zipf_scripts ~seed ~domains ~ops ~skew:zipf
          ~delete_ratio:0.3
      in
      B.replay_journal ~scripts ~final_read:Set_spec.Read recorded
    end
    else
      match Registry.find spec with
      | None ->
        Printf.eprintf "replay: %s: unknown spec %S\n" file spec;
        exit 1
      | Some packed ->
        let module A = (val packed : Uqadt.S) in
        let module B = Throughput.Bench (A) in
        let scripts = B.uniform_scripts ~seed ~domains ~ops ~query_ratio in
        B.replay_journal ~scripts
          ~final_read:(A.random_query (Prng.create seed))
          recorded
  in
  match outcome with
  | Error msg ->
    Printf.printf "replay FAILED: %s\n" msg;
    exit 1
  | Ok fp -> (
    match until with
    | Some k ->
      if k < 0 || k >= Obs.Journal.length recorded then begin
        Printf.eprintf
          "replay: --until %d out of range (journal has %d events)\n" k
          (Obs.Journal.length recorded);
        exit 1
      end;
      Format.printf "replay OK through event %d@.event %d          %a@." k k
        Obs.Journal.pp_event
        (Obs.Journal.event recorded k)
    | None ->
      Printf.printf "replay OK          %d events, fingerprint %s\n"
        (Obs.Journal.length recorded)
        fp)

let replay_cmd =
  let doc =
    "Re-execute a journaled run (from `run --journal-out` or `bench \
     --journal-out`) and verify it reproduces the recorded schedule and \
     history fingerprint, bisecting to the first diverging event on \
     mismatch."
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Event journal (JSONL) to replay.")
  in
  let until_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "until" ] ~docv:"K"
          ~doc:
            "Verify the prefix up to event index $(docv) only and print that \
             event — the index an online monitor names in a violation.")
  in
  let run file until =
    let recorded = load_journal ~cmd:"replay" file in
    match List.assoc_opt "engine" (Obs.Journal.header recorded) with
    | Some (Obs.Json.Str "parallel") ->
      replay_parallel_journal ~file recorded until
    | _ ->
    let capture = Obs.Journal.create () in
    let p =
      match params_of_header ~journal:capture (Obs.Journal.header recorded) with
      | exception Failure msg ->
        Printf.eprintf "replay: %s: %s\n" file msg;
        exit 1
      | p -> p
    in
    let p =
      match p.sample_interval with
      | None -> p
      | Some dt ->
        (* A soak journal carries Alert events. Rebuild the sampler and
           alert engine its header describes — over a fresh registry in
           the capture bundle — so the replay fires, and journals, the
           identical alert stream (the sampler schedules no engine
           events, so the rest of the schedule is untouched). *)
        let o = Obs.create ~journal:capture () in
        let s = Obs.Series.sampler ~interval:dt ~registry:o.Obs.registry () in
        let a = Obs.Alert.create p.rules in
        Obs.Alert.attach a s ~on_fire:(fun fr ->
            Obs.Journal.record capture
              (Obs.Journal.Alert
                 {
                   time = fr.Obs.Alert.time;
                   rule = Obs.Alert.rule_to_string fr.Obs.Alert.rule;
                   series = fr.Obs.Alert.series;
                   value = fr.Obs.Alert.value;
                 }));
        { p with obs = Some o; sampler = Some s }
    in
    let driver =
      match List.find_opt (fun (n, _, _) -> n = p.protocol) protocols with
      | Some (_, _, f) -> f
      | None ->
        Printf.eprintf "replay: %s: unknown protocol %S\n" file p.protocol;
        exit 1
    in
    Printf.printf "replaying          %s (seed %d, %d events recorded)\n"
      p.protocol p.seed
      (Obs.Journal.length recorded);
    driver p;
    let first_diff = Obs.Journal.diff recorded capture in
    let within i = match until with None -> true | Some k -> i <= k in
    (match first_diff with
    | Some (i, a, b) when within i ->
      Printf.printf "replay DIVERGED at event %d\n  recorded: %s\n  replayed: %s\n"
        i a b;
      exit 1
    | _ -> ());
    match until with
    | Some k ->
      if k < 0 || k >= Obs.Journal.length recorded then begin
        Printf.eprintf "replay: --until %d out of range (journal has %d events)\n"
          k
          (Obs.Journal.length recorded);
        exit 1
      end;
      Format.printf "replay OK through event %d@.event %d          %a@." k k
        Obs.Journal.pp_event
        (Obs.Journal.event recorded k)
    | None ->
      let fp_rec = Obs.Journal.fingerprint recorded in
      let fp_new = Obs.Journal.fingerprint capture in
      if fp_rec <> fp_new then begin
        let show = function Some s -> s | None -> "(none)" in
        Printf.printf
          "replay FAILED: fingerprint mismatch (recorded %s, replayed %s)\n"
          (show fp_rec) (show fp_new);
        exit 1
      end;
      Printf.printf "replay OK          %d events, fingerprint %s\n"
        (Obs.Journal.length recorded)
        (match fp_rec with Some s -> s | None -> "(none)")
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ file_arg $ until_arg)

let diff_cmd =
  let doc =
    "Print the first structural divergence between two event journals (or \
     report them identical)."
  in
  let file_a =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"A" ~doc:"First journal.")
  in
  let file_b =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"B" ~doc:"Second journal.")
  in
  let run fa fb =
    let a = load_journal ~cmd:"diff" fa in
    let b = load_journal ~cmd:"diff" fb in
    match Obs.Journal.diff a b with
    | Some (i, ea, eb) ->
      Printf.printf "first divergence at event %d\n  %s: %s\n  %s: %s\n" i fa ea
        fb eb;
      exit 1
    | None ->
      let pa = Obs.Journal.fingerprint a and pb = Obs.Journal.fingerprint b in
      if pa <> pb then begin
        let show = function Some s -> s | None -> "(none)" in
        Printf.printf
          "events identical but fingerprints differ (%s vs %s)\n" (show pa)
          (show pb);
        exit 1
      end;
      Printf.printf "journals identical (%d events, fingerprint %s)\n"
        (Obs.Journal.length a)
        (match pa with Some s -> s | None -> "(none)")
  in
  Cmd.v (Cmd.info "diff" ~doc) Term.(const run $ file_a $ file_b)

(* One bench execution with optional flight recording, shared by the
   generic-spec and set+zipf workload paths of `bench`. The recorder is
   attached iff any of --journal-out / --series-out / --monitor was
   given; the rebuilt journal's header carries everything `ucsim
   replay` needs to regenerate the scripts. *)
module Bench_drive (A : Uqadt.S) = struct
  module B = Throughput.Bench (A)

  let exec ~spec_name ~seed ~domains ~ops ~query_ratio ~zipf ~mailbox ~batch
      ~flush_window ~obs ~journal_out ~series_out ~monitors ~sample_interval
      ~scripts ~final_read ~describe =
    let recording =
      journal_out <> None || series_out <> None || monitors <> []
    in
    let recorder =
      if recording then Some (Obs.Recorder.create ~domains ()) else None
    in
    let journal_header =
      if not recording then None
      else
        Some
          [
            ("engine", Obs.Json.Str "parallel");
            ("spec", Obs.Json.Str spec_name);
            ("seed", Obs.Json.Num (float_of_int seed));
            ("domains", Obs.Json.Num (float_of_int domains));
            ("ops", Obs.Json.Num (float_of_int ops));
            ("query_ratio", Obs.Json.Num query_ratio);
            ("zipf", Obs.Json.Num zipf);
            ("batch", Obs.Json.Num (float_of_int batch));
            ("flush_window", Obs.Json.Num (float_of_int flush_window));
            ("mailbox", Obs.Json.Num (float_of_int mailbox));
          ]
    in
    let v =
      B.measure ~mailbox_capacity:mailbox ~batch_every:batch ~flush_window ?obs
        ?recorder
        ?monitor:(if monitors = [] then None else Some monitors)
        ?journal_header ~domains ~final_read ~scripts ()
    in
    let r = B.row ~batch ~flush_window ~ops_per_domain:ops v in
    let checks =
      [
        ("logs agree", string_of_bool v.B.logs_agree);
        ("omega = ts-fold", string_of_bool v.B.omega_matches_fold);
        ("replay = ts-fold", string_of_bool v.B.replay_matches_fold);
        ("updates conserved", string_of_bool v.B.updates_conserved);
        ( "sequential runner",
          match v.B.runner_matches with
          | None -> "n/a (non-commutative)"
          | Some b -> string_of_bool b );
      ]
      @
      match v.B.journal_replay with
      | None -> []
      | Some b -> [ ("journal replay", string_of_bool b) ]
    in
    describe r ~state:v.B.state_repr ~checks;
    (match v.B.recording with
    | None -> ()
    | Some rc ->
      (match rc.B.replay with
      | Ok fp ->
        Printf.printf "flight recorder    %d events, fingerprint %s\n"
          (Obs.Journal.length rc.B.journal)
          fp
      | Error msg -> Printf.printf "flight recorder    REPLAY FAILED: %s\n" msg);
      (match journal_out with
      | None -> ()
      | Some file ->
        let oc = open_out file in
        output_string oc (Obs.Journal.to_jsonl rc.B.journal);
        close_out oc;
        Printf.printf "journal written    %s (%d events)\n" file
          (Obs.Journal.length rc.B.journal));
      (match series_out with
      | None -> ()
      | Some file ->
        let oc = open_out file in
        let w =
          Obs.Series.writer oc
            ~meta:(Option.value ~default:[] journal_header)
        in
        let store =
          Throughput.series_of_events ~interval:sample_interval
            ~sink:(Obs.Series.write_point w) rc.B.events
        in
        Obs.Series.close_writer w;
        close_out oc;
        Printf.printf "series written     %s (%d series)\n" file
          (List.length (Obs.Series.list store)));
      match rc.B.monitor with
      | None -> ()
      | Some mon ->
        print_monitor_report ~criteria:monitors
          ~events:(B.Mon.events_seen mon)
          (B.Mon.violations mon));
    r
end

let bench_cmd =
  let doc =
    "Run the multicore replica engine: one domain per replica executing the \
     universal construction, bounded MPSC mailboxes in between, and the \
     Proposition 4 parallel-vs-sequential differential as the verdict. With \
     any of $(b,--journal-out), $(b,--series-out) or $(b,--monitor) the run \
     is flight-recorded: per-domain lock-free event capture, merged into a \
     replayable journal, checked by a sixth differential clause (sequential \
     re-execution of the recorded delivery order) and fed to the online \
     consistency monitors."
  in
  let spec_arg =
    Arg.(
      value
      & opt (enum (List.map (fun n -> (n, n)) Registry.names)) "counter"
      & info [ "spec" ] ~docv:"SPEC"
          ~doc:"Object to bench (see `ucsim list` objects).")
  in
  let domains_arg =
    Arg.(
      value & opt int 4
      & info [ "domains" ] ~docv:"N" ~doc:"Replica domains to spawn.")
  in
  let ops_arg =
    Arg.(
      value & opt int 10_000
      & info [ "ops" ] ~docv:"OPS" ~doc:"Closed-loop operations per domain.")
  in
  let zipf_arg =
    Arg.(
      value & opt float 0.0
      & info [ "zipf" ] ~docv:"S"
          ~doc:
            "Zipf skew for the contended set workload (set spec only; 0 = \
             uniform random updates).")
  in
  let query_ratio_arg =
    Arg.(
      value & opt float 0.0
      & info [ "query-ratio" ] ~docv:"R"
          ~doc:"Fraction of invocations that are queries.")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Run the sharded object space (set spec) over $(docv) shards on a \
             static consistent-hash ring, with the shard-aware per-shard \
             differential as the verdict. 1 (the default) benches the \
             single-object protocols.")
  in
  let keys_arg =
    Arg.(
      value & opt int 1024
      & info [ "keys" ] ~docv:"K"
          ~doc:"Key domain of the sharded workload (with --shards > 1).")
  in
  let fanout_arg =
    Arg.(
      value & opt int 3
      & info [ "fanout" ] ~docv:"W"
          ~doc:
            "Maximum keys per update batch in the sharded workload (with \
             --shards > 1).")
  in
  let mailbox_arg =
    Arg.(
      value & opt int 1024
      & info [ "mailbox" ] ~docv:"CAP" ~doc:"Mailbox capacity (frames).")
  in
  let batch_arg =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"K" ~doc:"Broadcast every K local updates.")
  in
  let flush_window_arg =
    Arg.(
      value & opt int 0
      & info [ "flush-window" ] ~docv:"W"
          ~doc:
            "Force-flush the per-destination send buffers every $(docv) local \
             invocations, bounding how long a coalesced message can wait for \
             its buffer to reach the --batch threshold (0 = no window; \
             flushes happen only on the threshold and at script end).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the row as JSON.")
  in
  let obs_arg =
    Arg.(value & flag & info [ "obs" ] ~doc:"Print per-domain telemetry rows.")
  in
  let journal_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-out" ] ~docv:"FILE"
          ~doc:
            "Flight-record the run and write the merged per-domain event \
             stream as a replayable journal (re-execute with `ucsim \
             replay`).")
  in
  let series_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "series-out" ] ~docv:"FILE"
          ~doc:
            "Flight-record the run and stream wall-clock per-domain time \
             series (JSONL; render with `ucsim report --series`).")
  in
  let monitor_arg =
    Arg.(
      value & opt monitors_conv []
      & info [ "monitor" ] ~docv:"CRITERIA"
          ~doc:
            "Comma-separated consistency criteria (uc, ec, pc) checked \
             online over the merged flight-recorder stream; the first \
             violating event is reported with its journal index. (pc \
             explores the cross-process interleaving automaton — \
             exponential in concurrent updates, so keep --ops small.)")
  in
  let sample_interval_arg =
    Arg.(
      value & opt float 0.01
      & info [ "sample-interval" ] ~docv:"DT"
          ~doc:"Wall-clock series sampling cadence in seconds.")
  in
  let run spec domains ops zipf seed query_ratio shards keys fanout mailbox
      batch flush_window json obs_flag journal_out series_out monitors
      sample_interval =
    let obs = if obs_flag then Some (Obs.create ()) else None in
    let clip s =
      if String.length s <= 96 then s else String.sub s 0 93 ^ "..."
    in
    if
      shards > 1
      && (journal_out <> None || series_out <> None || monitors <> [])
    then begin
      Printf.eprintf
        "bench: the flight recorder targets the one-core-per-domain engine; \
         --shards > 1 cannot be combined with --journal-out, --series-out \
         or --monitor\n";
      exit 1
    end;
    if shards > 1 then begin
      (* The sharded space runs the set spec; per-shard Prop 4 verdict. *)
      let module B = Throughput.Sharded (Set_spec) (Update_codec.For_set) in
      let skew = if zipf > 0.0 then zipf else 1.1 in
      let scripts =
        B.zipf_scripts ~seed ~domains ~ops ~keys ~skew ~fanout ~query_ratio
      in
      let v =
        B.measure ~mailbox_capacity:mailbox ~batch_every:batch ~flush_window
          ?obs ~shards ~domains ~scripts ()
      in
      let r = B.row ~keys ~skew ~fanout v in
      Printf.printf "spec               %s (sharded)\n" r.Throughput.shard_spec;
      Printf.printf "shards             %d (static ring)\n" r.Throughput.shards;
      Printf.printf "domains            %d (machine recommends %d)\n"
        r.Throughput.shard_domains
        (Domain.recommended_domain_count ());
      Printf.printf "keys / skew / fan  %d / %.2f / %d\n" r.Throughput.keys
        r.Throughput.skew r.Throughput.fanout;
      Printf.printf "ops                %d total, %d keyed sub-updates\n"
        r.Throughput.shard_total_ops r.Throughput.keyed_updates;
      Printf.printf "wall               %.4f s\n" r.Throughput.shard_wall_s;
      Printf.printf "throughput         %.0f ops/sec\n"
        r.Throughput.shard_ops_per_sec;
      Printf.printf "shard log spread   min %d / max %d\n"
        r.Throughput.shard_log_min r.Throughput.shard_log_max;
      Printf.printf "converged state    %s\n" (clip v.B.state_repr);
      List.iter
        (fun (k, vv) -> Printf.printf "  %-22s %s\n" k vv)
        [
          ("per-shard logs agree", string_of_bool v.B.shard_logs_agree);
          ("omega = keyed fold", string_of_bool v.B.omega_matches_fold);
          ("snapshot = keyed fold", string_of_bool v.B.snapshot_matches_fold);
          ("updates conserved", string_of_bool v.B.updates_conserved);
        ];
      Printf.printf "differential       %s\n"
        (if r.Throughput.shard_ok then "PASS" else "FAIL");
      Option.iter (fun path -> Throughput.emit_shard_json path [ r ]) json;
      Option.iter
        (fun o ->
          Obs.finalize o ~live:[];
          Format.printf "telemetry:@.%a@." Obs.Registry.pp o.Obs.registry)
        obs;
      if not r.Throughput.shard_ok then exit 1
    end
    else begin
    let describe (r : Throughput.row) ~state ~checks =
      Printf.printf "spec               %s\n" r.Throughput.spec;
      Printf.printf "domains            %d (machine recommends %d)\n"
        r.Throughput.domains
        (Domain.recommended_domain_count ());
      Printf.printf "ops                %d total, %d per domain\n"
        r.Throughput.total_ops r.Throughput.ops_per_domain;
      Printf.printf "updates            %d\n" r.Throughput.updates;
      Printf.printf "wall               %.4f s\n" r.Throughput.wall_s;
      Printf.printf "throughput         %.0f ops/sec\n" r.Throughput.ops_per_sec;
      Printf.printf "latency p50 / p99  %.2f / %.2f us\n" r.Throughput.p50_us
        r.Throughput.p99_us;
      Printf.printf "mailbox depth max  %d (stalls %d)\n"
        r.Throughput.mailbox_max_depth r.Throughput.mailbox_stalls;
      Printf.printf "converged state    %s\n" (clip state);
      List.iter (fun (k, v) -> Printf.printf "  %-22s %s\n" k v) checks;
      Printf.printf "differential       %s\n"
        (if r.Throughput.ok then "PASS" else "FAIL")
    in
    let row =
      if spec = "set" && zipf > 0.0 then begin
        let module D = Bench_drive (Set_spec) in
        let scripts =
          Throughput.set_zipf_scripts ~seed ~domains ~ops ~skew:zipf
            ~delete_ratio:0.3
        in
        D.exec ~spec_name:"set" ~seed ~domains ~ops ~query_ratio ~zipf
          ~mailbox ~batch ~flush_window ~obs ~journal_out ~series_out
          ~monitors ~sample_interval ~scripts ~final_read:Set_spec.Read
          ~describe
      end
      else begin
        let packed =
          match Registry.find spec with
          | Some p -> p
          | None -> assert false (* enum converter already validated *)
        in
        let module A = (val packed : Uqadt.S) in
        let module D = Bench_drive (A) in
        let scripts = D.B.uniform_scripts ~seed ~domains ~ops ~query_ratio in
        let final_read = A.random_query (Prng.create seed) in
        D.exec ~spec_name:spec ~seed ~domains ~ops ~query_ratio ~zipf:0.0
          ~mailbox ~batch ~flush_window ~obs ~journal_out ~series_out
          ~monitors ~sample_interval ~scripts ~final_read ~describe
      end
    in
    Option.iter (fun path -> Throughput.emit_json path [ row ]) json;
    Option.iter
      (fun o ->
        Obs.finalize o ~live:[];
        Format.printf "telemetry:@.%a@." Obs.Registry.pp o.Obs.registry)
      obs;
    if not row.Throughput.ok then exit 1
    end
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(
      const run $ spec_arg $ domains_arg $ ops_arg $ zipf_arg $ seed_arg
      $ query_ratio_arg $ shards_arg $ keys_arg $ fanout_arg $ mailbox_arg
      $ batch_arg $ flush_window_arg $ json_arg $ obs_arg $ journal_out_arg
      $ series_out_arg $ monitor_arg $ sample_interval_arg)

let list_cmd =
  let doc = "List protocols and experiments." in
  let run () =
    Printf.printf "protocols:\n";
    List.iter (fun (name, desc, _) -> Printf.printf "  %-12s %s\n" name desc) protocols;
    Printf.printf "experiments: %s\n" (String.concat " " experiment_ids);
    Printf.printf "objects:     %s\n" (String.concat " " Registry.names)
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let () =
  let doc = "Update consistency for wait-free concurrent objects — reproduction driver." in
  let info = Cmd.info "ucsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            figures_cmd;
            experiments_cmd;
            run_cmd;
            replay_cmd;
            diff_cmd;
            modelcheck_cmd;
            nemesis_cmd;
            storm_cmd;
            shrink_cmd;
            soak_cmd;
            bench_cmd;
            classify_cmd;
            report_cmd;
            list_cmd;
          ]))
